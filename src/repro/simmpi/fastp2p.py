"""Closed-form ("fast-path") point-to-point engine: flow fusion.

The message-level point-to-point path in :mod:`repro.simmpi.comm` spawns a
delivery event, a completion event, and mailbox bookkeeping per message —
the dominant wall-clock term of p2p-heavy solvers (IMe's column-wise
scheme).  This module completes deterministic p2p traffic through
per-``(cid, src, dst, tag)`` *flow records* instead: a blocking ``send``
computes its completion in closed form and queues the message on the flow;
an exact-match blocking ``recv`` pops the earliest-arriving queued message
(or parks — :class:`~repro.simmpi.engine.Park` — until a sender wakes it),
reproducing the mailbox's arrival-order matching without any event
objects.  It is enabled by ``Simulator(fast_p2p=True)``; the message-level
path is the default and stays the bit-identical reference.

On top of the flow records, :func:`fast_pipeline` executes a
``Communicator.pipeline`` composition — a gather→bcast chain such as IMe's
per-level exchange — as one fused rendezvous: every rank parks exactly
once and the last entrant replays all stages with the exact
:mod:`repro.simmpi.fastcoll` recurrences (same fold order, same float
round trips), so virtual times, traffic counters, and solver values are
bit-identical to driving the stages one collective at a time.

Scope and degradation
---------------------
Flows carry only traffic the closed form can match deterministically:
blocking/non-blocking sends and blocking receives with an exact source
and a non-negative tag, on untraced, unsanitized worlds.  The wildcard
operations (``ANY_SOURCE``/``ANY_TAG`` receives, ``irecv``, ``probe``,
``iprobe``) *degrade* the receiving rank's mailbox: pending flow messages
are flushed into the mailbox in ``(arrival, seq)`` order (the exact
message-level delivery order) and the ``(cid, rank)`` pair is marked so
every later operation takes the message-level path.  Degradation is
sticky and per destination — deterministic flows elsewhere keep the fast
path.  With a tracer or sanitizer attached the dispatchers in
:mod:`repro.simmpi.comm` never route through flows at all, so span
nesting and protocol checks are unchanged; attach observers before the
run starts, not mid-flight.

Equivalence contract
--------------------
Identical to :mod:`repro.simmpi.fastcoll`'s (see its module docstring):
for any stateless fabric the flow path is bit-identical to the
message-level path in virtual time, energy, message/byte counters, and
payload values.  ``_msg_seq`` is consumed exactly as the message path
would (one per send, one per posted receive), so flushed flows interleave
with mailbox arbitration exactly as an all-message run.
``tests/test_fast_p2p.py`` asserts the contract end to end on IMe and
fault-tolerant IMe.
"""

from __future__ import annotations

from bisect import insort
from typing import Any

from repro.simmpi.datatypes import (
    DEFAULT_OBJECT_BYTES,
    copy_payload,
    payload_nbytes,
)
from repro.simmpi.engine import Park, SleepUntil
from repro.simmpi.errors import CommMismatchError, SimMPIError
from functools import lru_cache

import numpy as np

from repro.memo import register_cache
from repro.simmpi import aggregate
from repro.simmpi.fastcoll import (
    _children_desc_table,
    _children_table,
    _COLL_TAG_BASE,
    _tree,
)


@register_cache
@lru_cache(maxsize=None)
def _parents_table(size: int) -> tuple[int, ...]:
    """vrank -> parent vrank in the binomial tree (vrank 0 maps to 0)."""
    return tuple(_tree(v, size)[0] if v else 0 for v in range(size))


class _Flow:
    """Messages in flight (and at most one parked receiver) for one
    ``(cid, src, dst, tag)`` key.

    ``msgs`` holds ``(arrival, seq, payload, nbytes)`` tuples sorted by
    ``(arrival, seq)`` — the mailbox's deterministic matching order.  A
    receiver that cannot complete synchronously parks in ``slot[0]``;
    arrival callbacks (one per in-flight message while a receiver waits)
    deliver the queue head the moment virtual time reaches it, so a
    smaller message sent later still overtakes a larger one sent earlier,
    exactly as mailbox delivery would.
    """

    __slots__ = ("world", "src", "dst", "tag", "msgs", "slot", "with_status",
                 "park_t")

    def __init__(self, world, src: int, dst: int, tag: int):
        self.world = world
        self.src = src
        self.dst = dst
        self.tag = tag
        self.msgs: list[tuple[float, int, Any, int]] = []
        self.slot: list = [None]
        self.with_status = False
        #: virtual time the current receiver parked at; cross-shard
        #: message injection (:mod:`repro.simmpi.shard`) schedules the
        #: arrival callback at ``max(arrival, park_t)`` so a message
        #: resolved at a window barrier completes exactly when the
        #: reference would have completed it
        self.park_t = 0.0

    def _on_arrival(self, _arg) -> None:
        """Complete the parked receiver with the queue head, if its time
        has come (stale callbacks — head already delivered, or receiver
        already satisfied — are no-ops)."""
        proc = self.slot[0]
        if proc is None or not self.msgs:
            return
        sim = self.world.sim
        arrival, _seq, payload, nbytes = self.msgs[0]
        if arrival > sim.now:
            return
        self.msgs.pop(0)
        self.slot[0] = None
        overhead = self.world.fabric.cpu_overhead(nbytes)
        if self.with_status:
            value = (payload, {"source": self.src, "tag": self.tag,
                               "nbytes": nbytes})
        else:
            value = payload
        sim.schedule_at(sim.now + overhead, proc._step, value)


def _flow_of(world, cid: int, src: int, dst: int, tag: int) -> _Flow:
    flows = world._flows.get((cid, dst))
    if flows is None:
        flows = world._flows[(cid, dst)] = {}
    flow = flows.get((src, tag))
    if flow is None:
        flow = flows[(src, tag)] = _Flow(world, src, dst, tag)
    return flow


def _push(comm, payload: Any, dest: int, tag: int,
          nbytes: int | None) -> tuple[float, float]:
    """Queue one message on its flow; returns ``(now, send_completion)``.

    Mirrors ``Communicator.isend`` exactly: same fabric queries, same
    ``call_at`` float round trips, same traffic accounting, same
    ``_msg_seq`` consumption, same copy-on-send.
    """
    world = comm.world
    sim = world.sim
    fabric = world.fabric
    size = payload_nbytes(payload) if nbytes is None else int(nbytes)
    src_node = comm._nodes[comm.rank]
    dst_node = comm._nodes[dest]
    now = sim.now
    schedule = getattr(fabric, "transfer_schedule", None)
    if schedule is not None:
        raw = schedule(size, src_node, dst_node, now)
    else:
        raw = now + fabric.transfer_time(size, src_node, dst_node)
    arrival = now + (raw - now)
    if world.track_traffic:
        world.stats.record(size, src_node != dst_node)
    flow = _flow_of(world, comm.cid, comm.rank, dest, tag)
    insort(flow.msgs, (arrival, next(world._msg_seq),
                       copy_payload(payload), size))
    if flow.slot[0] is not None:
        # A receiver is parked: race this arrival against the queue.
        sim.schedule_at(arrival, flow._on_arrival, None)
    overhead = fabric.cpu_overhead(size)
    return now, now + ((now + overhead) - now)


def fast_send(comm, payload: Any, dest: int, tag: int, nbytes: int | None):
    """Blocking eager send through the flow — no events, no Request."""
    now, done = _push(comm, payload, dest, tag, nbytes)
    if done > now:
        yield SleepUntil(done)
    return None


def fast_isend(comm, payload: Any, dest: int, tag: int, nbytes: int | None):
    """Non-blocking send: the message rides the flow, the completion is a
    regular :class:`~repro.simmpi.comm.Request` (same event timing as the
    message-level eager protocol)."""
    from repro.simmpi.comm import Request

    now, done_t = _push(comm, payload, dest, tag, nbytes)
    sim = comm.world.sim
    done = sim.event(name="isend")
    sim.schedule_at(done_t, done.set, None)
    return Request(done)


def fast_recv(comm, source: int, tag: int, with_status: bool):
    """Blocking exact-match receive through the flow.

    Completes synchronously when the earliest queued message has already
    arrived (future sends cannot overtake it: their arrival is bounded
    below by the current time); otherwise parks until an arrival callback
    delivers the queue head.
    """
    world = comm.world
    sim = world.sim
    # Keep the arbitration counter lockstep with a message-level run.
    next(world._msg_seq)
    flow = _flow_of(world, comm.cid, source, comm.rank, tag)
    now = sim.now
    if flow.msgs and flow.msgs[0][0] <= now:
        _arr, _seq, payload, nbytes = flow.msgs.pop(0)
        overhead = world.fabric.cpu_overhead(nbytes)
        done = now + overhead
        if done > now:
            yield SleepUntil(done)
        if with_status:
            return payload, {"source": source, "tag": tag, "nbytes": nbytes}
        return payload
    if flow.slot[0] is not None:
        raise SimMPIError(
            f"two concurrent receives on flow (cid={comm.cid}, "
            f"src={source}, dst={comm.rank}, tag={tag})"
        )
    flow.with_status = with_status
    flow.park_t = now
    if flow.msgs:
        sim.schedule_at(flow.msgs[0][0], flow._on_arrival, None)
    value = yield Park(flow.slot, 0)
    return value


def degrade(comm) -> None:
    """Flush this rank's flows into its mailbox and mark it degraded.

    Called by the wildcard-capable operations (``recv`` with
    ``ANY_SOURCE``/``ANY_TAG``, ``irecv``, ``probe``, ``iprobe``): queued
    flow messages become ordinary mailbox deliveries — already-arrived
    ones immediately, in ``(arrival, seq)`` order; future ones at their
    arrival times — and every later operation on ``(cid, rank)`` takes
    the message-level path.  Idempotent.
    """
    world = comm.world
    key = (comm.cid, comm.rank)
    if key in world._p2p_degraded:
        return
    world._p2p_degraded.add(key)
    flows = world._flows.pop(key, None)
    if not flows:
        return
    from repro.simmpi.comm import _Message

    pending = []
    for (src, tag), flow in flows.items():
        if flow.slot[0] is not None:
            raise SimMPIError(
                f"cannot degrade (cid={comm.cid}, rank={comm.rank}): a "
                f"receive is parked on flow (src={src}, tag={tag})"
            )
        for arrival, seq, payload, nbytes in flow.msgs:
            pending.append((arrival, seq, src, tag, payload, nbytes))
    pending.sort()
    sim = world.sim
    now = sim.now
    box = world._mailbox(comm.cid, comm.rank)
    for arrival, seq, src, tag, payload, nbytes in pending:
        msg = _Message(src=src, tag=tag, payload=payload, nbytes=nbytes,
                       arrival=arrival, seq=seq)
        if arrival <= now:
            box.deliver(msg)
        else:
            sim.schedule_at(arrival, box.deliver, msg)


# ------------------------------------------------- fused pipelines (untraced)

class _PipeRec:
    """Rendezvous record for a fused pipeline composition.

    Every member's completion depends on upstream stage roots, whose
    data-ready times depend on every member's entry — so, as with
    :class:`~repro.simmpi.fastcoll._FusedRec`, the whole chain is
    computed by whichever rank enters last, and every other rank parks
    exactly once.
    """

    __slots__ = ("entry", "procs", "steps", "remaining")

    def __init__(self, size: int):
        self.entry: list = [None] * size
        self.procs: list = [None] * size
        self.steps: list = [None] * size
        self.remaining = size


def _stage_env(comm):
    """Per-pipeline binding of the fabric/accounting callables the stage
    replays share (one attribute-lookup pass instead of one per stage)."""
    world = comm.world
    fabric = world.fabric
    return (
        fabric.cpu_overhead,
        getattr(fabric, "transfer_schedule", None),
        fabric.transfer_time,
        world.track_traffic,
        world.stats.record,
        comm._nodes,
    )


def _gather_stage(comm, env, entry: list, payloads: list, root: int):
    """Closed-form binomial gather with per-rank entry times ``entry``.

    Exact replay of :func:`repro.simmpi.fastcoll._up_cascade`: same
    deepest-first child fold, same ``max(entry, arrival) + cpu_overhead``
    recurrence, same per-hop accounting.  Returns per-rank completion
    times and results (rank-ordered list on the root, ``None``
    elsewhere).

    Two value-preserving shortcuts over the cascade's rank→payload dict
    merges: each subtree's membership is static, so every payload is
    copied once straight into the final rank-ordered list, and the
    accumulator's wire size is tracked incrementally (``payload_nbytes``
    of the dict is a plain sum over members, so the fold adds the
    child's already-known size) — same values, same isolation from
    sender buffers, same per-hop message/byte counts.
    """
    size = comm.size
    cpu_overhead, schedule, transfer_time, track, stats_record, nodes = env
    children_desc = _children_desc_table(size)
    parents = _parents_table(size)
    arrival = [0.0] * size
    nbytes_in = [0] * size
    compl = [0.0] * size
    out: list = [None] * size
    results: list = [None] * size
    # Virtual ranks descending: every child (vrank > parent) folds first.
    # repro: allow[PERF002] -- retained scalar reference path (stateful fabrics)
    for v in range(size - 1, -1, -1):
        r = (v + root) % size
        t = entry[r]
        out[r] = copy_payload(payloads[r])
        abytes = DEFAULT_OBJECT_BYTES + payload_nbytes(payloads[r])
        for c in children_desc[v]:
            t = max(t, arrival[c]) + cpu_overhead(nbytes_in[c])
            abytes += nbytes_in[c]
        if v == 0:
            compl[r] = t
            results[r] = out
            continue
        pr = (parents[v] + root) % size
        src_node = nodes[r]
        dst_node = nodes[pr]
        if schedule is not None:
            raw = schedule(abytes, src_node, dst_node, t)
        else:
            raw = t + transfer_time(abytes, src_node, dst_node)
        arrival[v] = t + (raw - t)
        if track:
            stats_record(abytes, src_node != dst_node)
        nbytes_in[v] = abytes
        ovh = cpu_overhead(abytes)
        compl[r] = t + ((t + ovh) - t)
    return compl, results


def _bcast_stage(comm, env, entry: list, payload: Any, root: int,
                 nbytes: int | None = None):
    """Closed-form binomial broadcast with per-rank entry times ``entry``.

    Exact replay of :func:`repro.simmpi.fastcoll._bcast_cascade`: the
    root sends eagerly down the tree, a non-root forwards at
    ``max(entry, arrival) + cpu_overhead``.  The root's result is the
    payload object itself (no copy), every other rank's a per-hop copy —
    the message-level ownership semantics.  ``nbytes`` overrides the
    modeled wire size (skeleton programs send placeholder payloads).
    """
    size = comm.size
    cpu_overhead, schedule, transfer_time, track, stats_record, nodes = env
    nb = payload_nbytes(payload) if nbytes is None else nbytes
    overhead = cpu_overhead(nb)
    children_tbl = _children_table(size)
    barr = [0.0] * size
    vval: list = [None] * size
    vval[0] = payload
    compl = [0.0] * size
    results: list = [None] * size
    # Virtual ranks ascending: every parent (vrank < child) sends first.
    # repro: allow[PERF002] -- retained scalar reference path (stateful fabrics)
    for v in range(size):
        r = (v + root) % size
        if v == 0:
            t = entry[r]
        else:
            t = max(entry[r], barr[v]) + overhead
        data = vval[v]
        children = children_tbl[v]
        if children:
            src_node = nodes[r]
            for c in children:
                dst_node = nodes[(c + root) % size]
                if schedule is not None:
                    raw = schedule(nb, src_node, dst_node, t)
                else:
                    raw = t + transfer_time(nb, src_node, dst_node)
                barr[c] = t + (raw - t)
                if track:
                    stats_record(nb, src_node != dst_node)
                vval[c] = copy_payload(data)
                t = t + ((t + overhead) - t)
        compl[r] = t
        results[r] = data
    return compl, results


def _vrank_view(comm, entry: list, root: int):
    """Entry times and node ids reindexed by virtual rank (root = 0)."""
    size = comm.size
    ranks = (np.arange(size) + root) % size
    entry_v = np.asarray(entry, dtype=float)[ranks]
    nodes_v = np.asarray(comm._nodes, dtype=np.intp)[ranks]
    return ranks, entry_v, nodes_v


def _gather_stage_vec(comm, venv, entry: list, payloads: list, root: int):
    """Aggregate form of :func:`_gather_stage`: whole-level completion
    times in O(log^2 size) numpy calls (see :mod:`repro.simmpi.aggregate`).

    Bit-identical to the scalar walk: same per-value float expressions
    evaluated wave-by-wave, order-free integer traffic sums aggregated.
    """
    size = comm.size
    ranks, entry_v, nodes_v = _vrank_view(comm, entry, root)
    pbytes = np.fromiter(
        (payload_nbytes(payloads[r]) for r in ranks),
        dtype=np.int64, count=size,
    )
    wire = aggregate.gather_sizes(size, pbytes, DEFAULT_OBJECT_BYTES)
    compl_v, _arrival, inter_msgs, inter_bytes = aggregate.gather_times(
        venv, size, entry_v, wire, nodes_v)
    world = comm.world
    if world.track_traffic:
        world.stats.record_bulk(size - 1, int(wire[1:].sum()),
                                inter_msgs, inter_bytes)
    out = [copy_payload(p) for p in payloads]
    results: list = [None] * size
    results[root] = out
    compl = np.empty(size)
    compl[ranks] = compl_v
    return compl.tolist(), results


def _bcast_stage_vec(comm, venv, entry: list, payload: Any, root: int,
                     nb: int):
    """Aggregate form of :func:`_bcast_stage` (same contract as
    :func:`_gather_stage_vec`)."""
    size = comm.size
    ranks, entry_v, nodes_v = _vrank_view(comm, entry, root)
    compl_v, inter = aggregate.bcast_times(venv, size, entry_v, nb, nodes_v)
    world = comm.world
    if world.track_traffic:
        world.stats.record_bulk(size - 1, nb * (size - 1), inter, nb * inter)
    compl = np.empty(size)
    compl[ranks] = compl_v
    results = [payload if r == root else copy_payload(payload)
               for r in range(size)]
    return compl.tolist(), results


def _pipe_times(comm, rec: _PipeRec, size: int):
    """Replay every stage of a fused pipeline; returns per-rank
    completion times and per-rank stage-result lists.

    With a stateless fabric and ``size >= aggregate.AGGREGATE_MIN_SIZE``
    each stage is one vectorized per-level evaluation; otherwise the
    scalar per-edge replay runs (bit-identical either way).
    """
    steps0 = rec.steps[0]
    nsteps = len(steps0)
    # repro: allow[PERF002] -- O(ranks) shape validation, no numeric work
    for r in range(1, size):
        stepsr = rec.steps[r]
        if len(stepsr) != nsteps or any(
            stepsr[i][0] != steps0[i][0] or stepsr[i][1] != steps0[i][1]
            for i in range(nsteps)
        ):
            raise CommMismatchError(
                f"pipeline stage shapes differ between ranks 0 and {r}: "
                f"{[(st[0], st[1]) for st in steps0]} vs "
                f"{[(st[0], st[1]) for st in stepsr]}"
            )
    env = _stage_env(comm)
    venv = (aggregate.vector_env(comm.world)
            if size >= aggregate.AGGREGATE_MIN_SIZE else None)
    t = list(rec.entry)
    results: list[list] = [[] for _ in range(size)]
    for si in range(nsteps):
        step0 = steps0[si]
        kind = step0[0]
        root = step0[1]
        if kind == "gather":
            payloads = [rec.steps[r][si][2] for r in range(size)]
            if venv is not None:
                t, res = _gather_stage_vec(comm, venv, t, payloads, root)
            else:
                t, res = _gather_stage(comm, env, t, payloads, root)
        elif kind == "bcast":
            producer = rec.steps[root][si][2]
            prev = results[root][si - 1] if si else None
            payload = producer(prev) if producer is not None else None
            nbytes = step0[3] if len(step0) > 3 else None
            if venv is not None:
                nb = payload_nbytes(payload) if nbytes is None else nbytes
                t, res = _bcast_stage_vec(comm, venv, t, payload, root, nb)
            else:
                t, res = _bcast_stage(comm, env, t, payload, root,
                                      nbytes=nbytes)
        else:
            raise SimMPIError(f"unknown pipeline stage kind {kind!r}")
        # repro: allow[PERF002] -- O(ranks) result fan-out, no numeric work
        for r in range(size):
            results[r].append(res[r])
    return t, results


def fast_pipeline(comm, steps):
    """Fused execution of a ``Communicator.pipeline`` composition.

    One park/wake per rank for the whole chain; bit-identical virtual
    times, traffic counters, and values to the stage-by-stage reference.
    Stage producers run inside the last entrant's cascade — their side
    effects land before any rank resumes, and an exception they raise
    surfaces on the last-entering rank's process rather than the stage
    root's (values and times are unaffected; use the reference path when
    debugging producer failures).
    """
    world = comm.world
    sim = world.sim
    size = comm.size
    if size == 1:
        # Degenerate chain: the compose path is already all-local (and
        # consumes the stage tags itself).
        return (yield from comm._pipeline_compose(steps))
    nsteps = len(steps)
    seq = comm._coll_seq + 1
    comm._coll_seq += nsteps
    key = (comm.cid, _COLL_TAG_BASE - seq)
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _PipeRec(size)
    now = sim.now
    rank = comm.rank
    rec.entry[rank] = now
    rec.steps[rank] = steps
    rec.remaining -= 1
    if rec.remaining:
        return (yield Park(rec.procs, rank))
    del colls[key]
    compl, results = _pipe_times(comm, rec, size)
    # repro: allow[PERF002] -- per-rank wake fan-out, one schedule per proc
    for u in range(size):
        p = rec.procs[u]
        if p is not None:
            sim.schedule_at(compl[u], p._step, results[u])
    t = compl[rank]
    if t > now:
        yield SleepUntil(t)
    return results[rank]
