"""Payload sizing and copy semantics for simulated messages.

MPI transfers raw buffers; to charge realistic wire time the simulator needs
the byte size of every payload, and to preserve MPI's value semantics numpy
buffers must be copied on send (a rank must never observe another rank
mutating a message it already received).
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

#: Size charged for payloads whose size cannot be determined (headers, small
#: python objects).  8 bytes models a scalar plus envelope.
DEFAULT_OBJECT_BYTES = 8


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload in bytes."""
    # Exact-type fast paths first: scalars and plain ndarrays are the
    # overwhelming majority of simulated payloads (pivot tuples, shards).
    t = type(payload)
    if t is float or t is int or t is bool:
        return DEFAULT_OBJECT_BYTES
    if t is np.ndarray:
        return int(payload.nbytes)
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool, complex)):
        return DEFAULT_OBJECT_BYTES
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) for item in payload) or DEFAULT_OBJECT_BYTES
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        ) or DEFAULT_OBJECT_BYTES
    # Fallback: the interpreter-level size is a usable proxy for odd objects.
    return int(sys.getsizeof(payload))


def copy_payload(payload: Any) -> Any:
    """Copy-on-send, mirroring MPI buffer semantics for mutable buffers.

    Numpy arrays are copied; immutable scalars/strings pass through; python
    containers are shallow-copied with their ndarray leaves copied.  Tuples
    whose items are all immutable scalars are shared, not rebuilt (tuples
    are immutable, so sharing is indistinguishable from copying).
    """
    t = type(payload)
    if t is np.ndarray:
        return payload.copy()
    if t is float or t is int or t is str or t is bool or payload is None:
        return payload
    if t is tuple:
        for item in payload:
            ti = type(item)
            if not (ti is float or ti is int or ti is str or ti is bool
                    or item is None):
                return tuple(copy_payload(item) for item in payload)
        return payload
    if t is list:
        return [copy_payload(item) for item in payload]
    if t is dict:
        return {k: copy_payload(v) for k, v in payload.items()}
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, list):
        return [copy_payload(item) for item in payload]
    if isinstance(payload, tuple):
        return tuple(copy_payload(item) for item in payload)
    if isinstance(payload, dict):
        return {k: copy_payload(v) for k, v in payload.items()}
    return payload
