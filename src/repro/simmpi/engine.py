"""Deterministic discrete-event engine driving simulated rank programs.

The engine owns a virtual clock and a priority queue of scheduled callbacks.
Rank programs (and any helper coroutine) are plain Python generators that
``yield`` *system calls*:

``Delay(dt)``
    Suspend the process for ``dt`` seconds of virtual time (this is how
    computation time is charged).
``Now()``
    Resume immediately with the current virtual time as the sent value.
``WaitEvent(ev)``
    Block until ``ev.set(value)`` is called; resumes with ``value``.

Composite operations (message passing, collectives, monitoring) are generator
functions delegated to with ``yield from``, so the engine only ever sees the
three primitives above.  Determinism is guaranteed by a monotonically
increasing sequence number that breaks ties between events scheduled at the
same virtual time.

A minimal program — spawn a generator, run to quiescence, read the result:

>>> from repro.simmpi.engine import Simulator, sleep, now
>>> sim = Simulator()
>>> def worker():
...     yield from sleep(1.5)          # advance 1.5 s of virtual time
...     t = yield from now()
...     return f"woke at {t:g}"
>>> proc = sim.spawn(worker(), name="w")
>>> sim.run()
1.5
>>> proc.result
'woke at 1.5'

Two processes synchronizing through a :class:`SimEvent`:

>>> sim = Simulator()
>>> ready = sim.event(name="ready")
>>> def producer():
...     yield from sleep(2.0)
...     ready.set("payload")
>>> def consumer():
...     value = yield from wait(ready)
...     return value
>>> results = sim.run_all([("p", producer()), ("c", consumer())])
>>> results["c"]
'payload'

The engine carries observability hooks (see :mod:`repro.obs.tracer`):
assigning a tracer to :attr:`Simulator.tracer` streams process lifecycle
events, virtual-clock advances, and event-queue depth to it.  With the
default ``tracer = None`` every hook site is a single attribute check —
tracing is zero-cost when disabled and never perturbs virtual time when
enabled (tracers are pure observers).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.simmpi.errors import DeadlockError


@dataclass(frozen=True)
class Delay:
    """Primitive syscall: advance this process ``dt`` seconds of virtual time."""

    dt: float

    def __post_init__(self):
        if self.dt < 0:
            raise ValueError(f"negative delay: {self.dt}")


@dataclass(frozen=True)
class Now:
    """Primitive syscall: resume immediately with the current virtual time."""


@dataclass(frozen=True)
class WaitEvent:
    """Primitive syscall: block until the event fires."""

    event: "SimEvent"


class SimEvent:
    """A one-shot event that processes can block on.

    ``set(value)`` wakes every waiter with ``value``.  Setting an event twice
    is an error; waiting on an already-set event resumes immediately.
    """

    __slots__ = ("_sim", "_value", "_is_set", "_waiters", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._value: Any = None
        self._is_set = False
        self._waiters: list[Process] = []
        self._callbacks: list[Callable] = []
        self.name = name

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def value(self) -> Any:
        if not self._is_set:
            raise RuntimeError(f"event {self.name!r} read before set")
        return self._value

    def set(self, value: Any = None) -> None:
        if self._is_set:
            raise RuntimeError(f"event {self.name!r} set twice")
        self._is_set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._schedule(0.0, proc._step, value)
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim._schedule(0.0, fn, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._is_set:
            self._sim._schedule(0.0, proc._step, self._value)
        else:
            self._waiters.append(proc)

    def add_callback(self, fn: Callable) -> None:
        """Invoke ``fn(value)`` when the event fires (immediately if set)."""
        if self._is_set:
            self._sim._schedule(0.0, fn, self._value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self._is_set else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Process:
    """A running generator registered with the simulator."""

    __slots__ = ("sim", "gen", "name", "done", "result", "error", "_blocked_on",
                 "finished_event", "finish_time")

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._blocked_on: str = "start"
        self.finished_event = SimEvent(sim, name=f"finish:{name}")
        self.finish_time: float | None = None

    def _step(self, send_value: Any = None) -> None:
        """Advance the generator one syscall and dispatch it."""
        self._blocked_on = "running"
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_process_resume(self.name, self.sim.now)
        try:
            syscall = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finish_time = self.sim.now
            self.sim._live_processes.discard(self)
            if tracer is not None:
                tracer.on_process_finish(self.name, self.sim.now)
            self.finished_event.set(stop.value)
            return
        except BaseException as exc:
            self.done = True
            self.error = exc
            self.sim._live_processes.discard(self)
            self.sim._fail(self, exc)
            return

        if isinstance(syscall, Delay):
            self._blocked_on = f"delay({syscall.dt:g})"
            if tracer is not None:
                tracer.on_process_block(self.name, "delay", self.sim.now)
            self.sim._schedule(syscall.dt, self._step, None)
        elif isinstance(syscall, Now):
            self._step(self.sim.now)
        elif isinstance(syscall, WaitEvent):
            self._blocked_on = f"wait({syscall.event.name})"
            if tracer is not None:
                tracer.on_process_block(self.name, "wait", self.sim.now)
            syscall.event._add_waiter(self)
        else:
            err = TypeError(
                f"process {self.name!r} yielded a non-syscall {syscall!r}; "
                "composite operations must be delegated with 'yield from'"
            )
            self.done = True
            self.error = err
            self.sim._live_processes.discard(self)
            self.sim._fail(self, err)

    def __repr__(self) -> str:
        state = "done" if self.done else self._blocked_on
        return f"<Process {self.name} {state}>"


class Simulator:
    """The deterministic event loop and virtual clock.

    >>> sim = Simulator()
    >>> sim.now
    0.0
    >>> hits = []
    >>> sim.call_at(0.25, hits.append)         # raw callback, absolute time
    >>> def prog():
    ...     yield Delay(1.0)
    ...     return "ok"
    >>> proc = sim.spawn(prog(), name="demo")
    >>> sim.run()
    1.0
    >>> (proc.result, hits)
    ('ok', [None])
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._failure: tuple[Process, BaseException] | None = None
        #: observability hook (see :mod:`repro.obs.tracer`); ``None`` keeps
        #: every hook site a single attribute check
        self.tracer = None

    @property
    def now(self) -> float:
        return self._now

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, arg))

    def call_at(self, time: float, fn: Callable, arg: Any = None) -> None:
        """Schedule a raw callback at an absolute virtual time."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._schedule(time - self._now, fn, arg)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self._live_processes.add(proc)
        if self.tracer is not None:
            self.tracer.on_process_spawn(name, self._now)
        self._schedule(0.0, proc._step, None)
        return proc

    def _fail(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)

    def run(self, until: float | None = None) -> float:
        """Run the event loop to quiescence (or virtual time ``until``).

        Returns the final virtual time.  Raises the first process failure,
        or :class:`DeadlockError` if processes remain blocked with no
        pending events.
        """
        while self._heap:
            if self._failure is not None:
                proc, exc = self._failure
                raise exc
            time, _seq, fn, arg = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, fn, arg))
                self._now = until
                return self._now
            if self.tracer is not None and time > self._now:
                self.tracer.on_clock_advance(self._now, time,
                                             len(self._heap) + 1)
            self._now = time
            fn(arg)
        if self._failure is not None:
            proc, exc = self._failure
            raise exc
        blocked = [p for p in self._live_processes if not p.done]
        if blocked:
            raise DeadlockError(blocked)
        return self._now

    def run_all(self, gens: Iterable[tuple[str, Generator]],
                until: float | None = None) -> dict[str, Any]:
        """Spawn the named generators, run to completion, return results."""
        procs = {name: self.spawn(gen, name=name) for name, gen in gens}
        self.run(until=until)
        return {name: proc.result for name, proc in procs.items()}


def sleep(dt: float):
    """Convenience coroutine: ``yield from sleep(dt)``."""
    yield Delay(dt)


def now():
    """Convenience coroutine: ``t = yield from now()``."""
    t = yield Now()
    return t


def wait(event: SimEvent):
    """Convenience coroutine: ``value = yield from wait(ev)``."""
    value = yield WaitEvent(event)
    return value
