"""Deterministic discrete-event engine driving simulated rank programs.

The engine owns a virtual clock and a priority queue of scheduled callbacks.
Rank programs (and any helper coroutine) are plain Python generators that
``yield`` *system calls*:

``Delay(dt)``
    Suspend the process for ``dt`` seconds of virtual time (this is how
    computation time is charged).
``Now()``
    Resume immediately with the current virtual time as the sent value.
``WaitEvent(ev)``
    Block until ``ev.set(value)`` is called; resumes with ``value``.
``Park(slots, index)``
    Register this process into ``slots[index]`` and suspend until another
    process schedules its resume (the fast-collective rendezvous).
``SleepUntil(t)``
    Sleep to the exact absolute virtual time ``t``.

Composite operations (message passing, collectives, monitoring) are generator
functions delegated to with ``yield from``, so the engine only ever sees the
primitives above.  Determinism is guaranteed by a monotonically
increasing sequence number that breaks ties between events scheduled at the
same virtual time.

A minimal program — spawn a generator, run to quiescence, read the result:

>>> from repro.simmpi.engine import Simulator, sleep, now
>>> sim = Simulator()
>>> def worker():
...     yield from sleep(1.5)          # advance 1.5 s of virtual time
...     t = yield from now()
...     return f"woke at {t:g}"
>>> proc = sim.spawn(worker(), name="w")
>>> sim.run()
1.5
>>> proc.result
'woke at 1.5'

Two processes synchronizing through a :class:`SimEvent`:

>>> sim = Simulator()
>>> ready = sim.event(name="ready")
>>> def producer():
...     yield from sleep(2.0)
...     ready.set("payload")
>>> def consumer():
...     value = yield from wait(ready)
...     return value
>>> results = sim.run_all([("p", producer()), ("c", consumer())])
>>> results["c"]
'payload'

The engine carries observability hooks (see :mod:`repro.obs.tracer`):
assigning a tracer to :attr:`Simulator.tracer` streams process lifecycle
events, virtual-clock advances, and event-queue depth to it.  With the
default ``tracer = None`` every hook site is a single attribute check —
tracing is zero-cost when disabled and never perturbs virtual time when
enabled (tracers are pure observers).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.simmpi.errors import DeadlockError


class Delay:
    """Primitive syscall: advance this process ``dt`` seconds of virtual time.

    Syscall objects are consumed synchronously by the engine, so the hot
    paths (``sleep``, compute charging, message overheads) recycle them
    through a small free list instead of allocating one per yield — see
    :func:`acquire_delay`.  Directly constructed instances are never
    pooled, so holding on to one is always safe.
    """

    __slots__ = ("dt", "_pooled")

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt}")
        self.dt = dt
        self._pooled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay(dt={self.dt!r})"


#: free list of recyclable :class:`Delay` instances (bounded)
_DELAY_POOL: list[Delay] = []
_DELAY_POOL_CAP = 256


def acquire_delay(dt: float) -> Delay:
    """A pooled :class:`Delay`; the engine recycles it after dispatch."""
    if _DELAY_POOL:
        d = _DELAY_POOL.pop()
        if dt < 0:
            _DELAY_POOL.append(d)
            raise ValueError(f"negative delay: {dt}")
        d.dt = dt
        return d
    d = Delay(dt)
    d._pooled = True
    return d


class Now:
    """Primitive syscall: resume immediately with the current virtual time."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Now()"


#: shared stateless instance — yielding ``NOW`` avoids an allocation
NOW = Now()


class WaitEvent:
    """Primitive syscall: block until the event fires."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent"):
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitEvent(event={self.event!r})"


class Park:
    """Primitive syscall: suspend until another process resumes this one.

    The engine stores the parked :class:`Process` into ``slots[index]`` and
    forgets about it; whoever holds the slot resumes the process with
    ``sim.schedule_at(t, proc._step, value)`` (the sent ``value`` becomes
    the yield's result).  This is the cheapest possible rendezvous — no
    event object, no callback list — and is what the closed-form collective
    engine (:mod:`repro.simmpi.fastcoll`) parks ranks on.
    """

    __slots__ = ("slots", "index")

    def __init__(self, slots: list, index: int):
        self.slots = slots
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Park(index={self.index!r})"


class SleepUntil:
    """Primitive syscall: sleep to an *absolute* virtual time.

    Unlike :class:`Delay` the engine schedules the resume with
    :meth:`Simulator.schedule_at`, so the wake-up timestamp is bit-identical
    to ``until`` (no relative round trip) — the fast collective path relies
    on this to reproduce message-level completion times exactly.
    """

    __slots__ = ("until",)

    def __init__(self, until: float):
        self.until = until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SleepUntil(until={self.until!r})"


class SimEvent:
    """A one-shot event that processes can block on.

    ``set(value)`` wakes every waiter with ``value``.  Setting an event twice
    is an error; waiting on an already-set event resumes immediately.
    """

    __slots__ = ("_sim", "_value", "_is_set", "_waiters", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._value: Any = None
        self._is_set = False
        self._waiters: list[Process] = []
        self._callbacks: list[Callable] = []
        self.name = name

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def value(self) -> Any:
        if not self._is_set:
            raise RuntimeError(f"event {self.name!r} read before set")
        return self._value

    def set(self, value: Any = None) -> None:
        if self._is_set:
            raise RuntimeError(f"event {self.name!r} set twice")
        self._is_set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._schedule(0.0, proc._step, value)
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim._schedule(0.0, fn, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._is_set:
            self._sim._schedule(0.0, proc._step, self._value)
        else:
            self._waiters.append(proc)

    def add_callback(self, fn: Callable) -> None:
        """Invoke ``fn(value)`` when the event fires (immediately if set)."""
        if self._is_set:
            self._sim._schedule(0.0, fn, self._value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self._is_set else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Process:
    """A running generator registered with the simulator."""

    __slots__ = ("sim", "gen", "name", "done", "result", "error", "_blocked_on",
                 "finished_event", "finish_time")

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        #: "start"/"running"/"delay", or the SimEvent being waited on
        self._blocked_on: Any = "start"
        self.finished_event = SimEvent(sim, name=f"finish:{name}")
        self.finish_time: float | None = None

    def _step(self, send_value: Any = None) -> None:
        """Advance the generator one syscall and dispatch it."""
        self._blocked_on = "running"
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_process_resume(self.name, self.sim.now)
        try:
            syscall = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finish_time = self.sim.now
            self.sim._live_processes.discard(self)
            if tracer is not None:
                tracer.on_process_finish(self.name, self.sim.now)
            self.finished_event.set(stop.value)
            return
        except BaseException as exc:
            self.done = True
            self.error = exc
            self.sim._live_processes.discard(self)
            self.sim._fail(self, exc)
            return

        # Exact-type dispatch: syscalls are final __slots__ classes, and
        # ``type is`` beats isinstance on this hottest of paths.
        st = type(syscall)
        if st is Delay:
            # _blocked_on stays a cheap constant; __repr__ renders detail.
            self._blocked_on = "delay"
            if tracer is not None:
                tracer.on_process_block(self.name, "delay", self.sim.now)
            self.sim._schedule(syscall.dt, self._step, None)
            if syscall._pooled and len(_DELAY_POOL) < _DELAY_POOL_CAP:
                _DELAY_POOL.append(syscall)
        elif st is SleepUntil:
            self._blocked_on = "sleep"
            if tracer is not None:
                tracer.on_process_block(self.name, "sleep", self.sim.now)
            self.sim.schedule_at(syscall.until, self._step, None)
        elif st is Park:
            self._blocked_on = "park"
            if tracer is not None:
                tracer.on_process_block(self.name, "park", self.sim.now)
            syscall.slots[syscall.index] = self
        elif st is Now:
            self._step(self.sim.now)
        elif st is WaitEvent:
            self._blocked_on = syscall.event
            if tracer is not None:
                tracer.on_process_block(self.name, "wait", self.sim.now)
            syscall.event._add_waiter(self)
        else:
            err = TypeError(
                f"process {self.name!r} yielded a non-syscall {syscall!r}; "
                "composite operations must be delegated with 'yield from'"
            )
            self.done = True
            self.error = err
            self.sim._live_processes.discard(self)
            self.sim._fail(self, err)

    def __repr__(self) -> str:
        if self.done:
            state = "done"
        elif isinstance(self._blocked_on, SimEvent):
            state = f"wait({self._blocked_on.name})"
        else:
            state = self._blocked_on
        return f"<Process {self.name} {state}>"


class Simulator:
    """The deterministic event loop and virtual clock.

    >>> sim = Simulator()
    >>> sim.now
    0.0
    >>> hits = []
    >>> sim.call_at(0.25, hits.append)         # raw callback, absolute time
    >>> def prog():
    ...     yield Delay(1.0)
    ...     return "ok"
    >>> proc = sim.spawn(prog(), name="demo")
    >>> sim.run()
    1.0
    >>> (proc.result, hits)
    ('ok', [None])
    """

    def __init__(self, fast_collectives: bool = True,
                 fast_p2p: bool = False,
                 sanitize: bool | None = None,
                 shards: int = 1):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._failure: tuple[Process, BaseException] | None = None
        #: observability hook (see :mod:`repro.obs.tracer`); ``None`` keeps
        #: every hook site a single attribute check
        self.tracer = None
        #: runtime MPI sanitizer (see :mod:`repro.simmpi.sanitizer`);
        #: ``sanitize=None`` defers to the ``REPRO_SANITIZE`` env var, so
        #: any Job can be sanitized without code changes.  ``None`` when
        #: disabled — a pure observer, zero cost and bit-identical timing
        self.sanitizer = None
        if sanitize is None:
            from repro.simmpi.sanitizer import sanitize_from_env
            sanitize = sanitize_from_env()
        if sanitize:
            from repro.simmpi.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self)
        #: communicators built on this simulator compute collective
        #: completion times in closed form instead of spawning per-hop
        #: messages (see :mod:`repro.simmpi.fastcoll`); the message-level
        #: path is kept for validation via ``fast_collectives=False``
        self.fast_collectives = fast_collectives
        #: deterministic point-to-point traffic (and ``Communicator.
        #: pipeline`` compositions) completes through closed-form flow
        #: records instead of mailbox events (see
        #: :mod:`repro.simmpi.fastp2p`); off by default — the message-level
        #: path is the bit-identical reference
        self.fast_p2p = fast_p2p
        #: space-parallel DES: partition the rank set across this many
        #: worker processes for a single run (see
        #: :mod:`repro.simmpi.shard`).  ``1`` — the default — is the
        #: single-process reference path; tracer and sanitizer force it.
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    @property
    def now(self) -> float:
        return self._now

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, arg))

    def call_at(self, time: float, fn: Callable, arg: Any = None) -> None:
        """Schedule a raw callback at an absolute virtual time."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._schedule(time - self._now, fn, arg)

    def schedule_at(self, time: float, fn: Callable, arg: Any = None) -> None:
        """Schedule at an *exact* absolute virtual time (no round trip
        through a relative delay, so the heap key is bit-identical to
        ``time`` — the fast collective path relies on this to reproduce
        message-level timestamps exactly)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, arg))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self._live_processes.add(proc)
        if self.tracer is not None:
            self.tracer.on_process_spawn(name, self._now)
        self._schedule(0.0, proc._step, None)
        return proc

    def _fail(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)

    def run(self, until: float | None = None) -> float:
        """Run the event loop to quiescence (or virtual time ``until``).

        Returns the final virtual time.  Raises the first process failure,
        or :class:`DeadlockError` if processes remain blocked with no
        pending events.
        """
        while self._heap:
            if self._failure is not None:
                proc, exc = self._failure
                raise exc
            time, _seq, fn, arg = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, fn, arg))
                self._now = until
                return self._now
            if self.tracer is not None and time > self._now:
                self.tracer.on_clock_advance(self._now, time,
                                             len(self._heap) + 1)
            if self.sanitizer is not None and time < self._now:
                raise AssertionError(
                    f"virtual time went backwards: {self._now} -> {time} "
                    "(heap ordering violated)"
                )
            self._now = time
            fn(arg)
        if self._failure is not None:
            proc, exc = self._failure
            raise exc
        blocked = [p for p in self._live_processes if not p.done]
        if blocked:
            detail = ""
            if self.sanitizer is not None:
                detail = self.sanitizer.deadlock_report(blocked)
            raise DeadlockError(blocked, detail=detail)
        if self.sanitizer is not None and until is None:
            self.sanitizer.check_finalize()
        return self._now

    def drain(self) -> float:
        """Run the event loop until the heap empties, without the
        deadlock check.

        Shard workers (:mod:`repro.simmpi.shard`) quiesce between
        synchronization windows: ranks parked on cross-shard operations
        are *expected* to be blocked with no pending events, so draining
        must return control to the worker runtime instead of raising
        :class:`DeadlockError`.  Process failures still propagate.
        """
        while self._heap:
            if self._failure is not None:
                proc, exc = self._failure
                raise exc
            time, _seq, fn, arg = heapq.heappop(self._heap)
            self._now = time
            fn(arg)
        if self._failure is not None:
            proc, exc = self._failure
            raise exc
        return self._now

    def rewind(self, time: float) -> None:
        """Move the clock backward to ``time`` (shard window barriers).

        Cross-shard completions resolved at a window barrier may precede
        the local clock, which advanced past them while other ranks kept
        simulating.  Rewinding is only legal at quiescence — the heap
        must be empty, so no already-scheduled event can observe the
        jump — and only in shard mode, where tracer and sanitizer (which
        assert clock monotonicity) are forced off.
        """
        if self._heap:
            raise RuntimeError("cannot rewind a simulator with pending events")
        if time < self._now:
            self._now = time

    def run_all(self, gens: Iterable[tuple[str, Generator]],
                until: float | None = None) -> dict[str, Any]:
        """Spawn the named generators, run to completion, return results."""
        procs = {name: self.spawn(gen, name=name) for name, gen in gens}
        self.run(until=until)
        return {name: proc.result for name, proc in procs.items()}


def sleep(dt: float):
    """Convenience coroutine: ``yield from sleep(dt)``."""
    yield acquire_delay(dt)


def now():
    """Convenience coroutine: ``t = yield from now()``."""
    t = yield NOW
    return t


def wake_at(sim: Simulator, time: float):
    """Coroutine: block until the exact absolute virtual time ``time``.

    ``time`` must be ``>= sim.now``; resumes via :class:`SleepUntil`, so
    the wake-up timestamp is bit-identical to ``time``.
    """
    yield SleepUntil(time)


def wait(event: SimEvent):
    """Convenience coroutine: ``value = yield from wait(ev)``."""
    value = yield WaitEvent(event)
    return value
