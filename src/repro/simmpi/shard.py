"""Space-parallel DES: one simulation run sharded across processes.

The rank set is partitioned into S contiguous, node-aligned shards, each
simulated by a forked worker process (the same fork-pool plumbing the
sweep executor uses to parallelize *across* runs).  Workers run their
rank programs completely normally — every operation whose participants
are all local takes the ordinary engine/fastcoll/fastp2p paths — and
quiesce when every remaining local rank is blocked on a *cross-shard*
operation.  At that window barrier the worker ships time-stamped records
(collective entries with their virtual entry times, outbound p2p flow
records — the same representation :mod:`repro.simmpi.fastp2p` uses) to
the parent coordinator, which resolves complete rendezvous sets with the
exact closed forms of :mod:`repro.simmpi.fastcoll` /
:mod:`repro.simmpi.fastp2p` and returns per-rank wake times and values.

Why this is bit-identical to single-process execution
-----------------------------------------------------
The fast engines already prove that every collective's completion times,
values, and traffic are *pure functions of the complete entry set* (the
last-entrant pattern: all ranks park, whoever arrives last replays the
whole schedule in closed form).  Sharding merely moves that replay from
"the last entering rank's process" to "the parent coordinator" — same
recurrences (:func:`~repro.simmpi.fastcoll._up_cascade`,
:func:`~repro.simmpi.fastcoll._bcast_cascade`,
:func:`~repro.simmpi.fastcoll._fused_times`,
:func:`~repro.simmpi.fastp2p._pipe_times`), same fold order, same float
round trips, same integer traffic sums.  Cross-shard p2p reuses the flow
records unchanged: the sender's half runs locally (identical timestamps
and counters), the record is injected into the receiving worker's flow
at the next barrier, and ``_Flow.park_t`` reproduces the receiver-side
``max(arrival, post_time) + overhead`` completion of the reference.

A worker's clock may run ahead of a cross-shard completion (it advanced
while other ranks kept simulating); at quiescence the heap is empty, so
:meth:`~repro.simmpi.engine.Simulator.rewind` legally moves the clock
back to the earliest wake before re-scheduling.  Lookahead is implicit:
an injected event can never precede the receiver's dependency frontier,
because every cross-shard timestamp is computed by the same fabric
closed forms the receiver itself would have used — the window advance is
bounded below by the network model's minimum cross-shard latency.

Scope and gating
----------------
Shard mode is opt-in (``Simulator(shards=N)``) and requires a *pure*
fabric — per-hop cost a function of ``(nbytes, src_node, dst_node)``
only — which is the fast-path equivalence contract itself.  Tracer and
sanitizer force the single-process reference path (they observe global
event interleavings that have no meaning per shard).  Wildcard receives,
``probe``/``irecv``, and ``alltoall`` are supported on shard-local
communicators only; on a spanning communicator they raise
:class:`ShardError` (the solvers in this repo use none of them across
shards).  Rank programs must never reach cross-shard mutable state
except through the window-barrier exchange — lint rule ``SHARD001``
enforces the gate discipline on the dispatch sites.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from bisect import insort
from typing import Any

from repro.simmpi import fastcoll, fastp2p
from repro.simmpi.datatypes import copy_payload, payload_nbytes
from repro.simmpi.engine import Park
from repro.simmpi.errors import CommMismatchError, DeadlockError, SimMPIError

_COLL_TAG_BASE = fastcoll._COLL_TAG_BASE

#: collective kinds that consume exactly one tag (like their fast engines)
_ONE_TAG = frozenset({"bcast", "gather", "scatter", "reduce"})
#: fused kinds consuming two tags (composed reduce + bcast)
_FUSED = frozenset({"allreduce", "allgather", "barrier"})


class ShardError(SimMPIError):
    """An operation is not supported in sharded execution."""


def fabric_is_pure(fabric) -> bool:
    """True when per-hop cost is a pure function of (nbytes, src, dst).

    Same condition as the fast-path equivalence contract: stateful
    fabrics (seeded jitter, NIC injection serialization) consume state
    in hop order, which has no consistent meaning across shards.
    """
    return (getattr(fabric, "jitter_frac", 0.0) == 0.0
            and not getattr(fabric, "serialize_injection", False))


def partition_ranks(node_of, n_ranks: int, shards: int) -> list[list[int]]:
    """Contiguous, node-aligned shard partition of the rank set.

    Each node's ranks land in exactly one shard — required so a worker
    owns its nodes' RAPL accounting outright — and shards are contiguous
    rank ranges balanced by rank count.  The effective shard count is
    ``min(shards, number of nodes)``.
    """
    groups: list[list[int]] = []
    last = None
    for r in range(n_ranks):
        node = node_of(r)
        if node != last:
            groups.append([])
            last = node
        groups[-1].append(r)
    shards = max(1, min(shards, len(groups)))
    # Balanced contiguous split of the node groups by total rank count:
    # close a shard once the cumulative rank count crosses the next
    # i/shards quantile boundary.
    out: list[list[int]] = []
    per = n_ranks / shards
    acc: list[int] = []
    assigned = 0
    for g in groups:
        acc.extend(g)
        if (len(out) < shards - 1
                and assigned + len(acc) >= per * (len(out) + 1) - 1e-9):
            out.append(acc)
            assigned += len(acc)
            acc = []
    if acc:
        out.append(acc)
    return out


# ===================================================================== worker

class _WorkerRuntime:
    """Per-worker shard state: spanning detection, pending parks, outbox.

    Installed as ``world.shard``; the communicator dispatch sites in
    :mod:`repro.simmpi.comm` consult it (guarded — see SHARD001) to
    route spanning operations here instead of the local engines.
    """

    def __init__(self, world, shard_id: int, local_ranks):
        self.world = world
        self.shard_id = shard_id
        self.local = frozenset(local_ranks)
        #: records accumulated since the last window barrier
        self.outbox: list = []
        #: (key, comm_rank) -> Park slot of a rank waiting on the parent
        self.parked: dict = {}
        #: (key, comm_rank) -> live pipeline steps (producers intact)
        self.pipes: dict = {}
        self._spans: dict = {}
        self._meta_sent: set = set()

    def spans(self, comm) -> bool:
        """True when ``comm`` has members outside this shard."""
        cached = self._spans.get(comm.cid)
        if cached is None:
            cached = not self.local.issuperset(comm._group)
            self._spans[comm.cid] = cached
        return cached

    def remote(self, comm, rank: int) -> bool:
        """True when comm-rank ``rank`` lives in another shard."""
        return comm._group[rank] not in self.local

    def _meta(self, comm):
        if comm.cid in self._meta_sent:
            return None
        self._meta_sent.add(comm.cid)
        return tuple(comm._group)

    # ------------------------------------------------------- collectives
    def collective(self, comm, kind: str, payload=None, root: int = 0,
                   nbytes=None, op=None, steps=None):
        """Generator: record entry, park, resume with the parent's value.

        Consumes ``_coll_seq`` tags exactly as the fast engines do, so a
        communicator's tag stream is lockstep with every other path.
        """
        sim = self.world.sim
        if kind in _ONE_TAG:
            comm._coll_seq = seq = comm._coll_seq + 1
        elif kind in _FUSED:
            seq = comm._coll_seq + 1
            comm._coll_seq = seq + 1
        else:  # pipeline: one tag per stage
            seq = comm._coll_seq + 1
            comm._coll_seq += len(steps)
        key = (comm.cid, _COLL_TAG_BASE - seq)
        rank = comm.rank
        if kind == "bcast":
            data = (root, nbytes, payload if rank == root else None)
        elif kind == "gather":
            data = (root, copy_payload(payload))
        elif kind == "reduce":
            data = (root, copy_payload(payload), op)
        elif kind == "scatter":
            if rank == root and (payload is None or len(payload) != comm.size):
                raise CommMismatchError(
                    f"scatter root needs {comm.size} payloads, got "
                    f"{None if payload is None else len(payload)}"
                )
            data = (root, nbytes, payload if rank == root else None)
        elif kind == "allreduce":
            data = (copy_payload(payload), op)
        elif kind == "allgather":
            data = (copy_payload(payload),)
        elif kind == "barrier":
            data = ()
        elif kind == "pipeline":
            self.pipes[(key, rank)] = steps
            data = (tuple(_strip_step(st) for st in steps),)
        else:  # pragma: no cover - dispatch sites enumerate the kinds
            raise ShardError(f"unknown collective kind {kind!r}")
        slot: list = [None]
        self.parked[(key, rank)] = slot
        self.outbox.append(
            ("coll", self._meta(comm), key, kind, rank, sim.now, data)
        )
        value = yield Park(slot, 0)
        # Root-identity results are produced locally (the parent ships
        # None): same object/copy semantics as the reference engines.
        if kind == "bcast" and rank == root:
            return payload
        if kind == "scatter" and rank == root:
            return copy_payload(payload[root])
        return value

    # --------------------------------------------------------------- p2p
    def p2p_send(self, comm, payload, dest: int, tag: int, nbytes=None):
        """Generator: the local half of a cross-shard blocking send.

        Mirrors :func:`repro.simmpi.fastp2p._push` exactly — same
        arrival/accounting/arbitration-counter effects — but routes the
        flow record through the parent instead of a local flow.
        """
        world = self.world
        sim = world.sim
        if tag < 0:
            raise ShardError(
                f"cross-shard send with reserved tag {tag} "
                f"(cid={comm.cid}, {comm.rank}->{dest})"
            )
        fabric = world.fabric
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        now = sim.now
        nodes = comm._nodes
        src_node = nodes[comm.rank]
        dst_node = nodes[dest]
        schedule = getattr(fabric, "transfer_schedule", None)
        if schedule is not None:
            raw = schedule(size, src_node, dst_node, now)
        else:
            raw = now + fabric.transfer_time(size, src_node, dst_node)
        arrival = now + (raw - now)
        if world.track_traffic:
            world.stats.record(size, src_node != dst_node)
        next(world._msg_seq)
        self.outbox.append(
            ("p2p", self._meta(comm), comm.cid, comm.rank, dest, tag,
             arrival, copy_payload(payload), size)
        )
        overhead = fabric.cpu_overhead(size)
        done = now + ((now + overhead) - now)
        if done > now:
            yield fastp2p.SleepUntil(done)
        return None

    def p2p_isend(self, comm, payload, dest: int, tag: int, nbytes=None):
        """Immediate-mode cross-shard send (same record, Request handle)."""
        world = self.world
        sim = world.sim
        if tag < 0:
            raise ShardError(
                f"cross-shard isend with reserved tag {tag} "
                f"(cid={comm.cid}, {comm.rank}->{dest})"
            )
        fabric = world.fabric
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        now = sim.now
        nodes = comm._nodes
        src_node = nodes[comm.rank]
        dst_node = nodes[dest]
        schedule = getattr(fabric, "transfer_schedule", None)
        if schedule is not None:
            raw = schedule(size, src_node, dst_node, now)
        else:
            raw = now + fabric.transfer_time(size, src_node, dst_node)
        arrival = now + (raw - now)
        if world.track_traffic:
            world.stats.record(size, src_node != dst_node)
        next(world._msg_seq)
        self.outbox.append(
            ("p2p", self._meta(comm), comm.cid, comm.rank, dest, tag,
             arrival, copy_payload(payload), size)
        )
        from repro.simmpi.comm import Request
        done = sim.event(f"isend:{comm.cid}:{comm.rank}->{dest}")
        overhead = fabric.cpu_overhead(size)
        done_t = now + ((now + overhead) - now)
        sim.schedule_at(done_t, done.set, None)
        return Request(done)

    def p2p_recv(self, comm, source: int, tag: int, with_status: bool):
        """Cross-shard receive: the flow path, fed by barrier injection."""
        if tag < 0:
            raise ShardError(
                f"cross-shard receive with wildcard/reserved tag {tag} "
                f"(cid={comm.cid}, {source}->{comm.rank})"
            )
        # repro: allow[FAST001] -- cross-shard receives always ride the
        # flow path: the mailbox reference cannot exist across processes,
        # and fast_recv == message recv is the proven p2p invariant
        return (yield from fastp2p.fast_recv(comm, source, tag, with_status))

    # ------------------------------------------------------------ barrier
    def apply(self, wakes: list, msgs: list) -> None:
        """Apply one window's resolutions: rewind, inject, reschedule.

        ``wakes`` are ``(key, comm_rank, time, value)``; ``msgs`` are
        cross-shard flow records addressed to local ranks.  The clock
        rewind is legal — the worker is quiesced (empty heap) — and the
        events scheduled here carry exact reference timestamps.
        """
        world = self.world
        sim = world.sim
        flows = []
        times = []
        for cid, src, dst, tag, arrival, payload, size in msgs:
            flow = fastp2p._flow_of(world, cid, src, dst, tag)
            flows.append((flow, arrival, payload, size))
            if flow.slot[0] is not None:
                times.append(max(arrival, flow.park_t))
        for _key, _rank, t, _value in wakes:
            times.append(t)
        if times:
            sim.rewind(min(times))
        for flow, arrival, payload, size in flows:
            insort(flow.msgs, (arrival, next(world._msg_seq), payload, size))
            if flow.slot[0] is not None:
                sim.schedule_at(max(arrival, flow.park_t),
                                flow._on_arrival, None)
        for key, rank, t, value in wakes:
            slot = self.parked.pop((key, rank))
            proc = slot[0]
            slot[0] = None
            self.pipes.pop((key, rank), None)
            sim.schedule_at(t, proc._step, value)


def _strip_step(step):
    """Shippable stage meta: producers become a marker (they are local
    closures; the parent round-trips their evaluation back here)."""
    if step[0] == "bcast" and step[2] is not None:
        return (step[0], step[1], "__producer__") + tuple(step[3:])
    return tuple(step)


def _worker_main(job, conn, shard_id: int, local_ranks, program, kwargs,
                 comms, contexts) -> None:
    """Worker process body: simulate local ranks between window barriers."""
    # repro: allow[DET001,DET101] -- wall-clock for shard metrics only,
    # never feeds modeled quantities
    wall0 = time.perf_counter()
    sim = job.sim
    world = job.world
    rt = _WorkerRuntime(world, shard_id, local_ranks)
    world.shard = rt
    try:
        spin_handles = []
        for rank in local_ranks:
            core = job.placement.core_of(rank)
            pkg = job.rapl_nodes[core.node_id].package(core.socket_id)
            spin_handles.append((pkg, pkg.begin_core_spin(0.0)))
        procs = {
            rank: sim.spawn(program(contexts[rank], comms[rank], **kwargs),
                            name=f"rank{rank}")
            for rank in local_ranks
        }
        reported: set = set()
        while True:
            sim.drain()
            finished = {}
            for rank, proc in procs.items():
                if proc.done and rank not in reported:
                    reported.add(rank)
                    finished[rank] = proc.finish_time
            blocked = sorted(p.name for p in sim._live_processes
                             if not p.done)
            conn.send(("q", rt.outbox, finished, blocked))
            rt.outbox = []
            while True:
                cmd = conn.recv()
                verb = cmd[0]
                if verb == "eval":
                    _verb, key, root, si, prev = cmd
                    producer = rt.pipes[(key, root)][si][2]
                    conn.send(("ev", producer(prev)))
                elif verb == "apply":
                    rt.apply(cmd[1], cmd[2])
                    break
                elif verb == "finish":
                    duration = cmd[1]
                    for pkg, handle in spin_handles:
                        pkg.end_core_spin(handle, duration)
                    owned = {job.placement.node_of(r) for r in local_ranks}
                    energy = {
                        (node.node_id, domain):
                            node.exact_domain_energy_j(domain, duration)
                        for node in job.rapl_nodes
                        if node.node_id in owned
                        for domain in job._domains()
                    }
                    results = {r: procs[r].result for r in local_ranks}
                    # The shard wall is a host-side metric riding the
                    # control pipe; it never feeds a modeled quantity.
                    # repro: allow[DET001,DET101] -- shard wall metric
                    wall = time.perf_counter() - wall0
                    snap = world.stats.snapshot()
                    conn.send(("result", results, energy, snap, wall))  # repro: allow[DET101] -- host metric on the control pipe
                    return
                else:  # abort
                    return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


# ===================================================================== parent

class _Op:
    """One cross-shard rendezvous accumulating entries until complete."""

    __slots__ = ("kind", "entries", "sid_of")

    def __init__(self, kind: str):
        self.kind = kind
        self.entries: dict[int, tuple[float, tuple]] = {}
        self.sid_of: dict[int, int] = {}


class _Coordinator:
    """Parent-side resolver: drives window barriers over the workers.

    Owns the pristine pre-fork ``World`` mirror — resolving an operation
    here accounts its cross-shard traffic into the parent's counters,
    which merge (order-free integer sums) with the workers' local
    counters to reproduce the reference totals exactly.
    """

    def __init__(self, job, world_comm, workers):
        self.job = job
        self.world = job.world
        self.workers = workers  # list of (process, conn, local rank set)
        self.comms: dict = {world_comm.cid: world_comm}
        self.groups: dict = {world_comm.cid: tuple(world_comm._group)}
        self.sid_of_rank = {}
        for sid, (_p, _c, ranks) in enumerate(workers):
            for r in ranks:
                self.sid_of_rank[r] = sid
        self.ops: dict = {}
        self.wake_batches: list[list] = [[] for _ in workers]
        self.inject_batches: list[list] = [[] for _ in workers]
        self.finished: dict[int, float] = {}
        self.blocked: dict[int, list] = {}

    # ------------------------------------------------------------- comms
    def _mirror(self, cid):
        comm = self.comms.get(cid)
        if comm is None:
            from repro.simmpi.comm import Communicator
            group = self.groups[cid]
            comm = Communicator(self.world, cid, 0, list(group), parent=None)
            self.comms[cid] = comm
        return comm

    def _note_meta(self, cid, meta):
        if meta is not None and cid not in self.groups:
            self.groups[cid] = meta

    # -------------------------------------------------------------- intake
    def _ingest(self, sid: int, records: list) -> None:
        for rec in records:
            if rec[0] == "coll":
                _t, meta, key, kind, rank, entry, data = rec
                self._note_meta(key[0], meta)
                op = self.ops.get(key)
                if op is None:
                    op = self.ops[key] = _Op(kind)
                op.entries[rank] = (entry, data)
                op.sid_of[rank] = sid
            else:  # p2p flow record
                _t, meta, cid, src, dst, tag, arrival, payload, size = rec
                self._note_meta(cid, meta)
                dst_wrank = self.groups[cid][dst]
                self.inject_batches[self.sid_of_rank[dst_wrank]].append(
                    (cid, src, dst, tag, arrival, payload, size)
                )

    # ----------------------------------------------------------- resolve
    def _resolve_ready(self) -> None:
        for key in list(self.ops):
            op = self.ops[key]
            comm = self._mirror(key[0])
            if len(op.entries) < comm.size:
                continue
            del self.ops[key]
            wakes = _RESOLVERS[op.kind](self, comm, key, op)
            for rank, (t, value) in wakes.items():
                self.wake_batches[op.sid_of[rank]].append(
                    (key, rank, t, value)
                )

    def _eval_producer(self, sid: int, key, root: int, si: int, prev):
        """Sub-round-trip: run a pipeline stage producer in the worker
        that owns the stage root (its closure state lives there)."""
        _proc, conn, _ranks = self.workers[sid]
        conn.send(("eval", key, root, si, prev))
        msg = conn.recv()
        if msg[0] == "error":
            raise ShardError(f"shard {sid} producer failed:\n{msg[1]}")
        return msg[1]

    # ----------------------------------------------------------- main loop
    def run(self):
        from multiprocessing.connection import wait as conn_wait

        n_ranks = self.world.size
        waiting: set[int] = set()
        conns = {id(c): (sid, c)
                 for sid, (_p, c, _r) in enumerate(self.workers)}
        while True:
            ready = conn_wait([c for _s, c in conns.values()])
            for c in ready:
                sid, _c = conns[id(c)]
                try:
                    msg = c.recv()
                except EOFError:
                    raise ShardError(f"shard worker {sid} died unexpectedly")
                if msg[0] == "error":
                    raise ShardError(
                        f"shard worker {sid} failed:\n{msg[1]}"
                    )
                _verb, records, finished, blocked = msg
                self.finished.update(finished)
                self.blocked[sid] = blocked
                self._ingest(sid, records)
                waiting.add(sid)
            if len(waiting) < len(self.workers):
                continue
            # Window barrier: every worker quiesced.
            self._resolve_ready()
            sent = False
            for sid in range(len(self.workers)):
                wakes = self.wake_batches[sid]
                msgs = self.inject_batches[sid]
                if not wakes and not msgs:
                    continue
                self.wake_batches[sid] = []
                self.inject_batches[sid] = []
                self.workers[sid][1].send(("apply", wakes, msgs))
                waiting.discard(sid)
                sent = True
            if sent:
                continue
            if len(self.finished) == n_ranks:
                return self._finish()
            names = sorted(n for b in self.blocked.values() for n in b)
            raise DeadlockError(
                names,
                detail=(f"sharded run stalled at a window barrier with "
                        f"{len(self.ops)} incomplete cross-shard "
                        f"rendezvous(es)"),
            )

    def _finish(self):
        duration = max(self.finished.values(), default=0.0)
        results: dict[int, Any] = {}
        energy: dict = {}
        traffic = dict(self.world.stats.snapshot())
        walls = [0.0] * len(self.workers)
        for sid, (_p, conn, _r) in enumerate(self.workers):
            conn.send(("finish", duration))
        for sid, (_p, conn, _r) in enumerate(self.workers):
            msg = conn.recv()
            if msg[0] == "error":
                raise ShardError(f"shard worker {sid} failed:\n{msg[1]}")
            _verb, rank_results, node_energy, stats, wall = msg
            results.update(rank_results)
            energy.update(node_energy)
            for k, v in stats.items():
                traffic[k] = traffic.get(k, 0) + v
            walls[sid] = wall
        # Allocated nodes with no ranks belong to no shard; their idle
        # accounting comes from the parent's pristine RAPL state (no
        # spins ever opened here — identical to any worker's view).
        owned = {node_id for (node_id, _d) in energy}
        for node in self.job.rapl_nodes:
            if node.node_id not in owned:
                for domain in self.job._domains():
                    energy[(node.node_id, domain)] = (
                        node.exact_domain_energy_j(domain, duration)
                    )
        return duration, results, energy, traffic, tuple(walls)


# --------------------------------------------------------- kind resolvers

def _resolve_bcast(co: _Coordinator, comm, key, op: _Op) -> dict:
    size = comm.size
    root = next(iter(op.entries.values()))[1][0]
    _root, nbytes, payload = op.entries[root][1]
    rec = fastcoll._DownRec(size)
    for rank, (entry, _data) in op.entries.items():
        rec.entry[(rank - root) % size] = entry
    rec.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)
    co.world._fast_colls[key] = rec
    fastcoll._bcast_cascade(comm, rec, key, root, size, 0, payload,
                            rec.entry[0])
    wakes = {}
    for rank in op.entries:
        v = (rank - root) % size
        wakes[rank] = (rec.compl[v], None if rank == root else rec.value[v])
    return wakes


def _resolve_up(co: _Coordinator, comm, key, op: _Op) -> dict:
    size = comm.size
    reduce_mode = op.kind == "reduce"
    first = next(iter(op.entries.values()))[1]
    root = first[0]
    fold = first[2] if reduce_mode else fastcoll._merge
    finalize = None if reduce_mode else fastcoll._ordered_list
    rec = fastcoll._UpRec(size)
    for rank, (entry, data) in op.entries.items():
        v = (rank - root) % size
        rec.entry[v] = entry
        payload = data[1]
        rec.acc[v] = (copy_payload(payload) if reduce_mode
                      else {rank: copy_payload(payload)})
    co.world._fast_colls[key] = rec
    table = fastcoll._children_table(size)
    # Leaves in descending virtual-rank order: exactly the deepest-first
    # cascade arrival order the incremental engine produces.
    for v in range(size - 1, -1, -1):
        if not table[v]:
            fastcoll._up_cascade(comm, rec, key, root, size, v, fold,
                                 finalize)
    root_value = rec.acc[0] if reduce_mode else fastcoll._ordered_list(
        rec.acc[0])
    wakes = {}
    for rank in op.entries:
        v = (rank - root) % size
        wakes[rank] = (rec.compl[v], root_value if rank == root else None)
    return wakes


def _resolve_scatter(co: _Coordinator, comm, key, op: _Op) -> dict:
    size = comm.size
    root = next(iter(op.entries.values()))[1][0]
    _root, nbytes, payloads = op.entries[root][1]
    world = co.world
    fabric = world.fabric
    nodes = comm._nodes
    src_node = nodes[root]
    wrank = comm.world_rank(root)
    t = op.entries[root][0]
    wakes = {}
    # repro: allow[PERF002] -- flat sequential send chain, inherently O(ranks)
    for dst in range(size):
        if dst == root:
            continue
        pbytes = (payload_nbytes(payloads[dst]) if nbytes is None
                  else nbytes[dst])
        arr = fastcoll._arrival(world, pbytes, src_node, nodes[dst], t)
        fastcoll._account(world, pbytes, src_node, nodes[dst], wrank)
        t = fastcoll._after_send(t, fabric.cpu_overhead(pbytes))
        compl = max(op.entries[dst][0], arr) + fabric.cpu_overhead(pbytes)
        wakes[dst] = (compl, copy_payload(payloads[dst]))
    wakes[root] = (t, None)
    return wakes


def _resolve_fused(co: _Coordinator, comm, key, op: _Op) -> dict:
    size = comm.size
    kind = op.kind
    rec = fastcoll._FusedRec(size)
    fold = fastcoll._add
    finalize = None
    if kind == "allreduce":
        fold = next(iter(op.entries.values()))[1][1]
    elif kind == "allgather":
        fold = fastcoll._merge
        finalize = fastcoll._ordered_list
    for rank, (entry, data) in op.entries.items():
        rec.entry[rank] = entry
        if kind == "allreduce":
            rec.acc[rank] = copy_payload(data[0])
        elif kind == "allgather":
            rec.acc[rank] = {rank: copy_payload(data[0])}
        else:
            rec.acc[rank] = 0
    compl, values = fastcoll._fused_times(comm, rec, size, fold, finalize)
    if kind == "barrier":
        return {r: (compl[r], None) for r in op.entries}
    return {r: (compl[r], values[r]) for r in op.entries}


def _resolve_pipeline(co: _Coordinator, comm, key, op: _Op) -> dict:
    size = comm.size
    rec = fastp2p._PipeRec(size)
    for rank, (entry, data) in op.entries.items():
        rec.entry[rank] = entry
        steps = []
        for si, st in enumerate(data[0]):
            if st[0] == "bcast" and st[2] == "__producer__":
                sid = op.sid_of[rank]
                proxy = _make_proxy(co, sid, key, rank, si)
                steps.append((st[0], st[1], proxy) + tuple(st[3:]))
            else:
                steps.append(st)
        rec.steps[rank] = steps
    compl, results = fastp2p._pipe_times(comm, rec, size)
    return {r: (compl[r], results[r]) for r in op.entries}


def _make_proxy(co: _Coordinator, sid: int, key, root: int, si: int):
    def proxy(prev):
        return co._eval_producer(sid, key, root, si, prev)
    return proxy


_RESOLVERS = {
    "bcast": _resolve_bcast,
    "gather": _resolve_up,
    "reduce": _resolve_up,
    "scatter": _resolve_scatter,
    "allreduce": _resolve_fused,
    "allgather": _resolve_fused,
    "barrier": _resolve_fused,
    "pipeline": _resolve_pipeline,
}


# ------------------------------------------------------- dispatch wrappers
# The communicator dispatch sites call these module-level entry points.
# Every call site must be lexically gated on a ``world.shard`` test (lint
# rule SHARD001): reaching them with ``world.shard`` unset means a rank
# program is touching cross-shard state outside the barrier exchange.

def shard_coll(comm, kind: str, payload=None, root: int = 0, nbytes=None,
               op=None, steps=None):
    """Route a spanning collective through the window-barrier exchange."""
    return comm.world.shard.collective(comm, kind, payload=payload,
                                       root=root, nbytes=nbytes, op=op,
                                       steps=steps)


def shard_send(comm, payload, dest: int, tag: int, nbytes=None):
    """Route a cross-shard blocking send through the barrier exchange."""
    return comm.world.shard.p2p_send(comm, payload, dest, tag, nbytes)


def shard_isend(comm, payload, dest: int, tag: int, nbytes=None):
    """Route a cross-shard immediate send through the barrier exchange."""
    return comm.world.shard.p2p_isend(comm, payload, dest, tag, nbytes)


def shard_recv(comm, source: int, tag: int, with_status: bool):
    """Route a cross-shard receive through the barrier exchange."""
    return comm.world.shard.p2p_recv(comm, source, tag, with_status)


# ===================================================================== entry

def run_sharded(job, program, shards: int, **kwargs):
    """Execute ``program`` on every rank across ``shards`` worker
    processes; returns ``(duration, results, energy, traffic, walls)``.

    Called by :meth:`repro.runtime.job.Job.run` when shard mode is
    enabled and neither tracer nor sanitizer is attached.  Falls back is
    the caller's job: this function raises :class:`ShardError` on
    configurations sharding cannot reproduce bit-identically.
    """
    if not fabric_is_pure(job.fabric):
        raise ShardError(
            "sharded execution requires a pure (stateless) fabric: "
            "per-hop cost must be a function of (nbytes, src, dst) only "
            "— disable fabric jitter / injection serialization, or run "
            "with shards=1"
        )
    parts = partition_ranks(job.placement.node_of, job.placement.n_ranks,
                            shards)
    comms = job.world.comm_world()
    contexts = job.make_contexts()
    ctx = multiprocessing.get_context("fork")
    workers = []
    try:
        for sid, ranks in enumerate(parts):
            parent_conn, worker_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(job, worker_conn, sid, ranks, program, kwargs,
                      comms, contexts),
                name=f"shard{sid}",
            )
            proc.start()
            worker_conn.close()
            workers.append((proc, parent_conn, frozenset(ranks)))
        return _Coordinator(job, comms[0], workers).run()
    finally:
        for proc, conn, _ranks in workers:
            try:
                conn.close()
            except Exception:
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
