"""Interconnect timing models used by the simulated MPI runtime.

A *fabric* answers two questions for a message of ``nbytes`` between two
ranks: how long the sending/receiving CPU is busy (overhead, charged to the
calling rank as virtual compute time) and when the message lands in the
destination mailbox (latency + serialization).  The cluster package supplies
a topology-aware fabric (intra-node shared memory vs. inter-node OmniPath);
this module provides the protocol plus a uniform fabric for standalone use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class Fabric(Protocol):
    """Timing interface consumed by :class:`repro.simmpi.comm.World`."""

    def cpu_overhead(self, nbytes: int) -> float:
        """Seconds of CPU time charged to each endpoint of a transfer."""
        ...

    def transfer_time(self, nbytes: int, src_node: int, dst_node: int) -> float:
        """Seconds from send to mailbox arrival."""
        ...


@dataclass(frozen=True)
class UniformFabric:
    """A flat network: one latency/bandwidth pair for every rank pair.

    Suitable defaults approximate a commodity RDMA network.  ``self_time``
    covers rank-to-self transfers (a memcpy).
    """

    latency: float = 1.5e-6
    bandwidth: float = 12.5e9  # bytes/s (100 Gbit/s)
    intra_latency: float = 4.0e-7
    intra_bandwidth: float = 30.0e9  # shared-memory copy rate
    overhead: float = 0.4e-6
    overhead_per_byte: float = 2.0e-11

    def cpu_overhead(self, nbytes: int) -> float:
        return self.overhead + self.overhead_per_byte * nbytes

    def transfer_time(self, nbytes: int, src_node: int, dst_node: int) -> float:
        if src_node == dst_node:
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class ZeroFabric:
    """A fabric with no cost at all — for pure-logic unit tests."""

    def cpu_overhead(self, nbytes: int) -> float:
        return 0.0

    def transfer_time(self, nbytes: int, src_node: int, dst_node: int) -> float:
        return 0.0
