"""Per-level aggregate closed forms: vectorized binomial-tree evaluators.

The fast engines (:mod:`repro.simmpi.fastcoll`, :mod:`repro.simmpi.fastp2p`)
replaced per-*message* simulation with per-*edge* closed forms — but the
edges were still walked one at a time in Python, so one collective over
``p`` ranks cost ``O(p log p)`` interpreted iterations.  At paper scale
(IMe emits one gather→bcast→bcast pipeline per level, n levels deep, and
n reaches 34560 on up to 1296 ranks) that Python loop *is* the wall
clock.

This module evaluates a whole collective's completion times in
``O(log^2 p)`` numpy calls: virtual ranks are grouped into *waves* by
binomial-tree depth (popcount of the virtual rank), each wave's readiness
``max(entry, arrival) + cpu_overhead`` is one elementwise evaluation, and
the per-parent send chains advance one child *slot* at a time — every
parent in a wave sends to its j-th child in one vectorized step.  The
evaluation order differs from the scalar cascade, but every individual
value is produced by the **same dataflow and the same float expressions**
(including the ``t + ((t + dt) - t)`` scheduling round trips), so the
results are bit-identical, not merely close; only order-free integer
traffic sums are aggregated.

Vectorization is only valid when the per-hop cost is a pure function of
``(nbytes, src_node, dst_node)`` — the same condition as the fast-path
equivalence contract itself.  :func:`vector_env` returns the extracted
fabric constants when that holds (:class:`~repro.simmpi.fabric.UniformFabric`,
or :class:`~repro.cluster.network.ClusterFabric` with ``jitter_frac == 0``
and no injection serialization; the jitter multiplier is exactly ``1.0``
there, and ``x * 1.0`` is bitwise ``x``) and ``None`` otherwise, in which
case callers keep the scalar per-edge walk.  ``AGGREGATE_MIN_SIZE`` gates
the numpy dispatch overhead away from small communicators; tests lower it
to force the vector path at toy sizes.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.memo import register_cache
from repro.simmpi.fabric import UniformFabric

#: smallest communicator size worth the numpy dispatch overhead; module
#: attribute (not a default argument) so tests can lower it to force the
#: vectorized path on toy communicators.
AGGREGATE_MIN_SIZE = 32


class VecEnv:
    """Stateless fabric constants, extracted once per collective."""

    __slots__ = ("intra_lat", "intra_bw", "inter_lat", "inter_bw",
                 "ovh", "ovh_pb")

    def __init__(self, intra_lat, intra_bw, inter_lat, inter_bw, ovh, ovh_pb):
        self.intra_lat = intra_lat
        self.intra_bw = intra_bw
        self.inter_lat = inter_lat
        self.inter_bw = inter_bw
        self.ovh = ovh
        self.ovh_pb = ovh_pb


def vector_env(world) -> VecEnv | None:
    """Extract vectorizable fabric constants, or ``None``.

    ``None`` means the fabric is stateful (seeded jitter consumes RNG
    draws in hop order, NIC serialization tracks per-node free times) —
    hops must then be modeled one at a time, in the scalar cascade
    order, to stay deterministic per seed.
    """
    fabric = world.fabric
    if isinstance(fabric, UniformFabric):
        return VecEnv(fabric.intra_latency, fabric.intra_bandwidth,
                      fabric.latency, fabric.bandwidth,
                      fabric.overhead, fabric.overhead_per_byte)
    jitter = getattr(fabric, "jitter_frac", None)
    if jitter == 0.0 and not getattr(fabric, "serialize_injection", True):
        p = fabric.params
        return VecEnv(p.intra_latency, p.intra_bandwidth,
                      p.inter_latency, p.inter_bandwidth,
                      p.cpu_overhead, p.cpu_overhead_per_byte)
    return None


@functools.lru_cache(maxsize=None)
def _wave_tables(size: int):
    """Per-size index tables for wave-parallel tree evaluation.

    Returns ``(parent, waves)`` where ``parent[v]`` is the binomial
    parent of virtual rank ``v`` and ``waves[d]`` is ``(vr, slots)``:
    the virtual ranks at tree depth ``d`` (``popcount(v)``), and for
    each child slot ``j`` the pair ``(idx, child)`` — indices into
    ``vr`` of the parents that have a ``j``-th child, and those
    children's virtual ranks.  Slot order equals the scalar engines'
    child order (descending sub-tree mask, which for binomial trees is
    also the deepest-subtree-first fold order), so slot-at-a-time
    evaluation reproduces the per-parent send/fold sequences exactly.
    """
    from repro.simmpi.fastcoll import _children_table, _tree

    children = _children_table(size)
    parent = np.zeros(size, dtype=np.intp)
    for v in range(1, size):
        parent[v] = _tree(v, size)[0]
    depth = [v.bit_count() for v in range(size)]
    waves = []
    for d in range(max(depth) + 1):
        vr = np.array([v for v in range(size) if depth[v] == d],
                      dtype=np.intp)
        nchild = [len(children[v]) for v in vr]
        slots = []
        for j in range(max(nchild, default=0)):
            idx = np.array([i for i, k in enumerate(nchild) if k > j],
                           dtype=np.intp)
            slots.append((idx, np.array([children[vr[i]][j] for i in idx],
                                        dtype=np.intp)))
        waves.append((vr, tuple(slots)))
    return parent, tuple(waves)


register_cache(_wave_tables)


def _transfer(venv: VecEnv, nbytes, same_node):
    """Elementwise two-tier transfer time; ``nbytes`` scalar or array."""
    return np.where(same_node,
                    venv.intra_lat + nbytes / venv.intra_bw,
                    venv.inter_lat + nbytes / venv.inter_bw)


def bcast_times(venv: VecEnv, size: int, entry_v, nb: int, nodes_v):
    """Vectorized down-cascade: per-vrank completion times of a bcast.

    ``entry_v``/``nodes_v`` are indexed by *virtual* rank (root = vrank
    0).  Returns ``(compl, inter_messages)``: completion times per
    virtual rank and the number of inter-node hops (traffic is uniform
    at ``nb`` bytes over ``size - 1`` hops, so counts aggregate).

    Wave ``d`` holds the vranks at tree depth ``d``; readiness is one
    elementwise ``max(entry, arrival) + overhead``, and the per-parent
    send chains advance in lockstep one child slot at a time — the same
    ``t + ((t + dt) - t)`` round trips as the scalar cascade, evaluated
    in a different (dataflow-equivalent) order.
    """
    _parent, waves = _wave_tables(size)
    overhead = venv.ovh + venv.ovh_pb * nb
    ti = venv.intra_lat + nb / venv.intra_bw
    te = venv.inter_lat + nb / venv.inter_bw
    barr = np.zeros(size)
    compl = np.empty(size)
    inter = 0
    for d, (vr, slots) in enumerate(waves):
        if d == 0:
            t = entry_v[vr].astype(float, copy=True)
        else:
            t = np.maximum(entry_v[vr], barr[vr]) + overhead
        for idx, child in slots:
            s = t[idx]
            same = nodes_v[vr[idx]] == nodes_v[child]
            tt = np.where(same, ti, te)
            barr[child] = s + ((s + tt) - s)
            inter += len(same) - int(np.count_nonzero(same))
            t[idx] = s + ((s + overhead) - s)
        compl[vr] = t
    return compl, inter


def gather_times(venv: VecEnv, size: int, entry_v, nbytes_in, nodes_v):
    """Vectorized up-cascade: per-vrank completion/arrival times.

    ``nbytes_in[v]`` is the wire size of the message vrank ``v`` sends
    to its parent (unused for vrank 0); the fold at each parent charges
    ``cpu_overhead(nbytes_in[child])`` per child in deepest-subtree-first
    order, exactly like the scalar cascade.  Returns ``(compl, arrival,
    inter_messages, inter_bytes)``.
    """
    parent, waves = _wave_tables(size)
    nbytes_in = np.asarray(nbytes_in)
    ovh_in = venv.ovh + venv.ovh_pb * nbytes_in
    arrival = np.zeros(size)
    compl = np.empty(size)
    inter_msgs = 0
    inter_bytes = 0
    for d in range(len(waves) - 1, -1, -1):
        vr, slots = waves[d]
        t = entry_v[vr].astype(float, copy=True)
        for idx, child in slots:
            t[idx] = np.maximum(t[idx], arrival[child]) + ovh_in[child]
        if d == 0:
            compl[vr] = t
            continue
        same = nodes_v[vr] == nodes_v[parent[vr]]
        tt = _transfer(venv, nbytes_in[vr], same)
        arrival[vr] = t + ((t + tt) - t)
        cross = ~same
        inter_msgs += int(np.count_nonzero(cross))
        inter_bytes += int(nbytes_in[vr][cross].sum())
        o = ovh_in[vr]
        compl[vr] = t + ((t + o) - t)
    return compl, arrival, inter_msgs, inter_bytes


def gather_sizes(size: int, pbytes_v, object_bytes: int):
    """Accumulated wire sizes of a dict-merging binomial gather.

    ``pbytes_v[v]`` is vrank ``v``'s own payload size; each rank's
    upward message carries its whole folded subtree, so
    ``out[v] = object_bytes + pbytes_v[v] + sum(out[children])`` —
    an order-free exact integer sum, evaluated bottom-up one wave at a
    time.
    """
    parent, waves = _wave_tables(size)
    out = np.asarray(pbytes_v, dtype=np.int64) + object_bytes
    for d in range(len(waves) - 1, 0, -1):
        vr = waves[d][0]
        np.add.at(out, parent[vr], out[vr])
    return out
