"""Cartesian process topologies (``MPI_Cart_create`` and friends).

Grid-structured applications (like the 2D block-cyclic solver) address
neighbours by coordinates rather than ranks.  ``create_cart`` arranges a
communicator's ranks in a row-major N-dimensional grid and returns a
:class:`CartComm` supporting coordinate queries, neighbour ``shift``
(halo exchanges), and ``sub`` (dimension-collapsing sub-communicators,
``MPI_Cart_sub``) — all built on the plain communicator operations, so
their timing emerges from the same fabric model.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.simmpi.comm import Communicator
from repro.simmpi.errors import SimMPIError


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced dimensions whose product is ``nnodes`` (``MPI_Dims_create``).

    Dimensions are as square as possible, in non-increasing order.
    """
    if nnodes <= 0 or ndims <= 0:
        raise SimMPIError(f"bad dims_create inputs: {nnodes}, {ndims}")
    dims = [1] * ndims
    remaining = nnodes
    for i in range(ndims):
        target = round(remaining ** (1.0 / (ndims - i)))
        d = max(1, target)
        while remaining % d:
            d -= 1
        dims[i] = d
        remaining //= d
    dims.sort(reverse=True)
    if math.prod(dims) != nnodes:
        raise SimMPIError(
            f"cannot factor {nnodes} ranks into {ndims} dimensions"
        )
    return dims


class CartComm:
    """A communicator with an attached Cartesian topology."""

    def __init__(self, comm: Communicator, dims: Sequence[int],
                 periods: Sequence[bool]):
        self.comm = comm
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        if len(self.dims) != len(self.periods):
            raise SimMPIError("dims and periods must have equal length")
        if math.prod(self.dims) != comm.size:
            raise SimMPIError(
                f"grid {self.dims} needs {math.prod(self.dims)} ranks, "
                f"communicator has {comm.size}"
            )

    # ---------------------------------------------------------- coordinates
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int | None = None) -> tuple[int, ...]:
        """Row-major coordinates of a rank (default: mine)."""
        r = self.comm.rank if rank is None else rank
        if not (0 <= r < self.size):
            raise SimMPIError(f"rank {r} out of range [0, {self.size})")
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at given coordinates (periodic dims wrap; others must fit)."""
        if len(coords) != self.ndims:
            raise SimMPIError(
                f"expected {self.ndims} coordinates, got {len(coords)}"
            )
        rank = 0
        for c, d, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= d
            elif not (0 <= c < d):
                raise SimMPIError(
                    f"coordinate {c} outside non-periodic dimension of {d}"
                )
            rank = rank * d + c
        return rank

    def shift(self, dimension: int, displacement: int = 1
              ) -> tuple[int | None, int | None]:
        """(source, destination) ranks for a shift along one dimension.

        ``None`` plays the role of ``MPI_PROC_NULL`` at non-periodic edges.
        """
        if not (0 <= dimension < self.ndims):
            raise SimMPIError(f"dimension {dimension} out of range")
        me = list(self.coords())

        def neighbour(offset: int) -> int | None:
            c = list(me)
            c[dimension] += offset
            d = self.dims[dimension]
            if not self.periods[dimension] and not (0 <= c[dimension] < d):
                return None
            return self.rank_of(c)

        return neighbour(-displacement), neighbour(+displacement)

    # -------------------------------------------------------- communication
    def neighbor_exchange(self, payload, dimension: int,
                          displacement: int = 1, tag: int = 0):
        """Halo exchange: send toward +displacement, receive from the
        matching source.  Returns the received payload (or None at a
        non-periodic edge)."""
        source, dest = self.shift(dimension, displacement)
        req = None
        if dest is not None:
            req = self.comm.isend(payload, dest=dest, tag=tag)
        received = None
        if source is not None:
            received = yield from self.comm.recv(source=source, tag=tag)
        if req is not None:
            yield from req.wait()
        return received

    def sub(self, remain_dims: Sequence[bool]):
        """``MPI_Cart_sub``: collapse the dims where ``remain_dims`` is
        False; returns a :class:`CartComm` over the remaining grid."""
        if len(remain_dims) != self.ndims:
            raise SimMPIError("remain_dims must match the grid rank")
        me = self.coords()
        color = tuple(c for c, keep in zip(me, remain_dims) if not keep)
        key = self.rank_of([c if keep else 0
                            for c, keep in zip(me, remain_dims)])
        sub_comm = yield from self.comm.split(color=hash(color), key=key)
        new_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        new_periods = [p for p, keep in zip(self.periods, remain_dims)
                       if keep]
        if not new_dims:
            new_dims, new_periods = [1], [False]
        return CartComm(sub_comm, new_dims, new_periods)


def create_cart(comm: Communicator, dims: Sequence[int] | None = None,
                periods: Sequence[bool] | None = None,
                ndims: int = 2):
    """Build a Cartesian topology over all ranks of ``comm`` (collective).

    With ``dims=None`` a balanced ``ndims``-dimensional grid is chosen via
    :func:`dims_create`.
    """
    if dims is None:
        dims = dims_create(comm.size, ndims)
    if periods is None:
        periods = [False] * len(dims)
    # Collective agreement on the shape (ranks must pass matching args —
    # verified here, as MPI would error on mismatch).
    shapes = yield from comm.allgather((tuple(dims), tuple(periods)))
    if any(s != shapes[0] for s in shapes):
        raise SimMPIError(f"inconsistent cart shapes across ranks: {shapes}")
    return CartComm(comm, dims, periods)
