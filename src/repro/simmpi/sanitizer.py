"""Runtime MPI sanitizer: cross-rank protocol checking, off by default.

Enable with ``Simulator(sanitize=True)`` or ``REPRO_SANITIZE=1`` in the
environment (read once at :class:`~repro.simmpi.engine.Simulator`
construction, so every :class:`~repro.runtime.job.Job` inherits it with
no plumbing).  The sanitizer is a pure observer — it never yields, never
touches the virtual clock, and with it disabled every hook site is a
single ``is None`` attribute check — so a sanitized run is bit-identical
(results, virtual times, energy) to an unsanitized one.

Three families of checks:

* **Collective sequence.**  MPI requires every rank of a communicator to
  call the same collectives in the same order.  Each communicator handle
  counts its collective calls; the Nth call on communicator ``cid`` is
  compared against the first rank to reach N.  A mismatched operation or
  root aborts immediately with *both* ranks' program call sites.
* **Finalize leaks.**  When the event loop reaches quiescence the
  mailbox fabric must be empty: a buffered message nobody received, or a
  posted receive nothing matched, is a protocol leak
  (:class:`~repro.simmpi.errors.MessageLeakError` listing every leak).
* **Deadlock forensics.**  When the loop instead strands blocked
  processes, the sanitizer renders a per-rank report — what each process
  is blocked on, plus any collective only a subset of ranks has entered
  — and attaches it to the :class:`~repro.simmpi.errors.DeadlockError`.

The engine additionally asserts virtual-time monotonicity on every event
dispatch while sanitizing.
"""

from __future__ import annotations

import os
import traceback
from typing import TYPE_CHECKING

from repro.simmpi.errors import CollectiveMismatchError, MessageLeakError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simmpi.comm import Communicator, World
    from repro.simmpi.engine import Simulator

#: stack frames from these directories are runtime internals, not the
#: program call site the report should point at
_INTERNAL_DIR = os.path.dirname(os.path.abspath(__file__))


def _callsite() -> str:
    """``file:line`` of the innermost frame outside the simmpi runtime."""
    for frame in reversed(traceback.extract_stack()):
        frame_dir = os.path.dirname(os.path.abspath(frame.filename))
        if frame_dir != _INTERNAL_DIR:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class _CollRecord:
    """First-arriving rank's view of one (cid, seq) collective slot."""

    __slots__ = ("op", "root", "rank", "site", "arrived", "size")

    def __init__(self, op: str, root: int | None, rank: int, site: str,
                 size: int = 0):
        self.op = op
        self.root = root
        self.rank = rank
        self.site = site
        self.arrived = 1
        self.size = size


class Sanitizer:
    """Observer attached to a :class:`Simulator` and its worlds."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._worlds: list[World] = []
        #: (cid, seq) -> record; entries retire once every rank arrives,
        #: so memory is bounded by cross-rank skew, not run length
        self._pending: dict[tuple[int, int], _CollRecord] = {}
        #: collectives checked (diagnostics / tests)
        self.collectives_checked = 0

    def attach_world(self, world: "World") -> None:
        self._worlds.append(world)

    # ------------------------------------------------------- collectives
    def on_collective(self, comm: "Communicator", op: str,
                      root: int | None = None) -> None:
        seq = comm._san_seq
        comm._san_seq = seq + 1
        self.collectives_checked += 1
        key = (comm.cid, seq)
        record = self._pending.get(key)
        if record is None:
            self._pending[key] = _CollRecord(op, root, comm.rank,
                                             _callsite(), comm.size)
            if comm.size == 1:
                del self._pending[key]
            return
        if record.op != op or record.root != root:
            def fmt(r, o, w):
                rooted = "" if o is None else f"(root={o})"
                return f"rank {r} called {w}{rooted}"
            raise CollectiveMismatchError(
                f"collective sequence mismatch on communicator "
                f"{comm.cid} (call #{seq}): "
                f"{fmt(record.rank, record.root, record.op)} at "
                f"{record.site}, but "
                f"{fmt(comm.rank, root, op)} at {_callsite()}"
            )
        record.arrived += 1
        if record.arrived >= comm.size:
            del self._pending[key]

    # ---------------------------------------------------------- finalize
    def check_finalize(self) -> None:
        """Raise :class:`MessageLeakError` if the fabric is not empty."""
        leaks: list[str] = []
        for world in self._worlds:
            for (cid, dst), box in sorted(world._mailboxes.items()):
                for msg in box.messages.values():
                    leaks.append(
                        f"comm {cid}: message from rank {msg.src} to rank "
                        f"{dst} (tag={msg.tag}, {msg.nbytes} B) was never "
                        "received"
                    )
                for bucket in box._recvs_by_key.values():
                    for pending in bucket:
                        leaks.append(
                            f"comm {cid}: rank {dst} posted a receive "
                            f"(source={pending.source}, tag={pending.tag}) "
                            "that nothing matched"
                        )
                for pending in box._recvs_any:
                    leaks.append(
                        f"comm {cid}: rank {dst} posted a wildcard receive "
                        f"(source={pending.source}, tag={pending.tag}) "
                        "that nothing matched"
                    )
        if leaks:
            listing = "\n".join(f"  - {leak}" for leak in leaks)
            raise MessageLeakError(
                f"run finished with {len(leaks)} protocol leak(s):\n{listing}"
            )
        # A collective slot still pending at quiescence means a subset of
        # ranks posted a collective the rest never joined — e.g. a root
        # whose bcast sends complete unilaterally while a worker already
        # returned.  Nothing is blocked, so only this check can see it.
        if self._pending:
            (cid, seq), record = sorted(self._pending.items())[0]
            rooted = "" if record.root is None else f"(root={record.root})"
            raise CollectiveMismatchError(
                f"run finished with collective #{seq} on communicator "
                f"{cid} incomplete: {record.op}{rooted} was entered by "
                f"{record.arrived} of {record.size} rank(s) (first was "
                f"rank {record.rank} at {record.site}); every rank of "
                "the communicator must execute the same collective "
                "sequence"
            )

    # ---------------------------------------------------------- deadlock
    def deadlock_report(self, blocked: list) -> str:
        """Per-rank blocked-state dump attached to the DeadlockError."""
        lines = ["sanitizer deadlock report:"]
        for proc in sorted(blocked, key=lambda p: p.name):
            target = proc._blocked_on
            state = getattr(target, "name", None) or str(target)
            lines.append(f"  - {proc.name}: blocked on {state}")
        for (cid, seq), record in sorted(self._pending.items()):
            lines.append(
                f"  - comm {cid} collective #{seq} ({record.op}): only "
                f"{record.arrived} rank(s) arrived (first was rank "
                f"{record.rank} at {record.site})"
            )
        return "\n".join(lines)


def sanitize_from_env(default: bool = False) -> bool:
    """``REPRO_SANITIZE`` truthiness (unset / ``0`` / empty = off)."""
    value = os.environ.get("REPRO_SANITIZE")
    if value is None:
        return default
    return value.strip().lower() not in ("", "0", "false", "no", "off")
