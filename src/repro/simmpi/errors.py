"""Error types raised by the simulated MPI runtime."""


class SimMPIError(Exception):
    """Base class for all simulated-MPI errors."""


class RankAbort(SimMPIError):
    """A rank program aborted (the analogue of ``MPI_Abort``)."""

    def __init__(self, rank: int, reason: str = ""):
        self.rank = rank
        self.reason = reason
        super().__init__(f"rank {rank} aborted: {reason}")


class CommMismatchError(SimMPIError):
    """A collective was invoked inconsistently across the communicator."""


class TruncationError(SimMPIError):
    """A receive buffer was too small for the matched message."""


class DeadlockError(SimMPIError):
    """The event loop ran out of events while processes were still blocked.

    ``detail`` carries the sanitizer's per-rank blocked-state report when
    the run executed with ``Simulator(sanitize=True)``.
    """

    def __init__(self, blocked: list, detail: str = ""):
        self.blocked = list(blocked)
        self.detail = detail
        names = ", ".join(str(p) for p in self.blocked)
        message = f"simulation deadlocked; blocked processes: [{names}]"
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)


class SanitizerError(SimMPIError):
    """Base class for violations reported by the runtime MPI sanitizer."""


class CollectiveMismatchError(SanitizerError):
    """Two ranks disagreed on the Nth collective of a communicator."""


class MessageLeakError(SanitizerError):
    """The run finished with undelivered messages or unmatched receives."""
