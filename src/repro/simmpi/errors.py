"""Error types raised by the simulated MPI runtime."""


class SimMPIError(Exception):
    """Base class for all simulated-MPI errors."""


class RankAbort(SimMPIError):
    """A rank program aborted (the analogue of ``MPI_Abort``)."""

    def __init__(self, rank: int, reason: str = ""):
        self.rank = rank
        self.reason = reason
        super().__init__(f"rank {rank} aborted: {reason}")


class CommMismatchError(SimMPIError):
    """A collective was invoked inconsistently across the communicator."""


class TruncationError(SimMPIError):
    """A receive buffer was too small for the matched message."""


class DeadlockError(SimMPIError):
    """The event loop ran out of events while processes were still blocked."""

    def __init__(self, blocked: list):
        self.blocked = list(blocked)
        names = ", ".join(str(p) for p in self.blocked)
        super().__init__(f"simulation deadlocked; blocked processes: [{names}]")
