"""Communicators, point-to-point messaging, and collectives.

The :class:`World` owns the mailbox fabric shared by every communicator.
Every blocking operation is a generator to be driven with ``yield from``::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send({"a": 7}, dest=1, tag=11)
        elif comm.rank == 1:
            data = yield from comm.recv(source=0, tag=11)

Collectives are implemented *on top of* point-to-point transfers using
binomial trees (bcast/reduce) and flat fan-in/fan-out (gather/scatter), so
their virtual-time cost emerges from the same latency/bandwidth model as
ordinary messages — the log₂(P) critical-path behaviour of real MPI
collectives is reproduced rather than asserted.
"""

from __future__ import annotations

import functools
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.simmpi import fastcoll, fastp2p, shard
from repro.simmpi.datatypes import copy_payload, payload_nbytes
from repro.simmpi.engine import Simulator, WaitEvent, acquire_delay
from repro.simmpi.errors import CommMismatchError, SimMPIError
from repro.simmpi.fabric import Fabric, UniformFabric

ANY_SOURCE = -1
ANY_TAG = -1

#: ``split_type`` constant mirroring ``MPI_COMM_TYPE_SHARED``: group ranks
#: that share a node (shared-memory domain).
COMM_TYPE_SHARED = "shared"

# Collective tags live below the valid point-to-point tag range; the
# constant lives in fastcoll so its inlined tag arithmetic stays lockstep
# with _next_coll_tag here.
_COLL_TAG_BASE = fastcoll._COLL_TAG_BASE


def _traced(cat: str):
    """Wrap a blocking communicator operation in an observability span.

    With no tracer attached (``world.tracer is None``, the default) the
    wrapper forwards the underlying generator untouched — zero extra
    frames on the hot path.  With a tracer, a driver generator opens the
    span when the caller starts driving the operation and closes it when
    the operation completes — exact virtual-time brackets.
    """

    def decorate(fn):
        op_name = fn.__name__

        def traced_drive(self, tracer, gen):
            wrank = self.world_rank()
            span = tracer.begin_span(
                op_name, cat=cat,
                pid=self.world.node_of(wrank), tid=wrank,
                t=self.world.sim.now, args={"comm": self.cid},
            )
            try:
                return (yield from gen)
            finally:
                tracer.end_span(span, t=self.world.sim.now)

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = self.world.tracer
            if tracer is None:
                return fn(self, *args, **kwargs)
            return traced_drive(self, tracer, fn(self, *args, **kwargs))

        return wrapper

    return decorate


def SUM(a, b):
    return a + b


def PROD(a, b):
    return a * b


def MAX(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def MIN(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def _elementwise(op: Callable) -> Callable:
    """Lift a binary op to element-wise application over equal-length lists."""

    def lifted(a, b):
        return [op(x, y) for x, y in zip(a, b)]

    return lifted


@functools.lru_cache(maxsize=None)
def _binomial_tree(vrank: int, size: int) -> tuple[int | None, tuple[int, ...]]:
    """Binomial-tree neighbours for a virtual rank (root = 0), memoized.

    Children are vrank + m for every power of two m below the bit that
    links vrank to its parent (MPICH's binomial broadcast schedule).
    Returns ``(parent, children)`` with children in descending-mask order;
    the tuple is shared via the cache — never mutate it.
    """
    parent = None
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = vrank - mask
            break
        mask <<= 1
    children = []
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size:
            children.append(child)
        mask >>= 1
    return parent, tuple(children)


class _Message:
    __slots__ = ("src", "tag", "payload", "nbytes", "arrival", "seq")

    def __init__(self, src: int, tag: int, payload: Any, nbytes: int,
                 arrival: float, seq: int):
        self.src = src
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival = arrival
        self.seq = seq


class _PendingRecv:
    __slots__ = ("source", "tag", "event", "seq")

    def __init__(self, source: int, tag: int, event: Any, seq: int):
        self.source = source
        self.tag = tag
        self.event = event  # SimEvent resolved with the matched _Message
        self.seq = seq


class _Mailbox:
    """Per-(comm, dest) store of arrived messages and posted receives.

    The common case — an exact ``(source, tag)`` receive matching an exact
    delivery — is O(1) through per-key FIFO indexes.  Wildcard receives
    (``ANY_SOURCE`` and/or ``ANY_TAG``) live in a separate post-ordered
    list; matching arbitrates between the two by global post sequence
    number, so mixing wildcard and exact receives keeps MPI's
    first-posted-first-matched semantics deterministically — the indexed
    layout never reorders a match relative to the old linear scan.
    """

    __slots__ = ("messages", "_msgs_by_key", "_recvs_by_key", "_recvs_any",
                 "probe_waiters")

    def __init__(self):
        #: seq -> message, in delivery order (dicts preserve insertion)
        self.messages: dict[int, _Message] = {}
        self._msgs_by_key: dict[tuple[int, int], deque] = {}
        self._recvs_by_key: dict[tuple[int, int], deque] = {}
        self._recvs_any: list[_PendingRecv] = []
        self.probe_waiters: list = []

    @staticmethod
    def _matches(msg: _Message, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or msg.src == source) and (
            tag == ANY_TAG or msg.tag == tag
        )

    def deliver(self, msg: _Message) -> None:
        # Candidate exact receive: FIFO head of this (src, tag) bucket.
        key = (msg.src, msg.tag)
        exact = self._recvs_by_key.get(key)
        cand = exact[0] if exact else None
        if self._recvs_any:
            # First matching wildcard receive, in post order; the earlier
            # *posted* of the two candidates wins (seq = global post order).
            for pending in self._recvs_any:
                if self._matches(msg, pending.source, pending.tag):
                    if cand is None or pending.seq < cand.seq:
                        cand = pending
                    break
        if cand is not None:
            if exact is not None and exact and cand is exact[0]:
                exact.popleft()
                if not exact:
                    del self._recvs_by_key[key]
            else:
                self._recvs_any.remove(cand)
            cand.event.set(msg)
            self._wake_probes()
            return
        self.messages[msg.seq] = msg
        bucket = self._msgs_by_key.get(key)
        if bucket is None:
            bucket = self._msgs_by_key[key] = deque()
        bucket.append(msg.seq)
        self._wake_probes()

    def _wake_probes(self) -> None:
        # Waiters are woken in FIFO append order so repeated probes observe
        # deliveries in a deterministic sequence.
        if not self.probe_waiters:
            return
        waiters, self.probe_waiters = self.probe_waiters, []
        for ev in waiters:
            ev.set(None)

    def post_recv(self, pending: _PendingRecv) -> None:
        if pending.source != ANY_SOURCE and pending.tag != ANY_TAG:
            key = (pending.source, pending.tag)
            seqs = self._msgs_by_key.get(key)
            if seqs:
                seq = seqs.popleft()
                if not seqs:
                    del self._msgs_by_key[key]
                pending.event.set(self.messages.pop(seq))
                return
            bucket = self._recvs_by_key.get(key)
            if bucket is None:
                bucket = self._recvs_by_key[key] = deque()
            bucket.append(pending)
            return
        # Wildcard receive: earliest buffered message in delivery order.
        for seq, msg in self.messages.items():
            if self._matches(msg, pending.source, pending.tag):
                del self.messages[seq]
                bucket = self._msgs_by_key[(msg.src, msg.tag)]
                # seq is the oldest delivery of its key, hence the head.
                bucket.remove(seq)
                if not bucket:
                    del self._msgs_by_key[(msg.src, msg.tag)]
                pending.event.set(msg)
                return
        self._recvs_any.append(pending)


class Request:
    """Handle for a non-blocking operation (``isend``/``irecv``)."""

    __slots__ = ("_event", "_post")

    def __init__(self, event, post: Callable[[Any], Any] | None = None):
        self._event = event
        self._post = post

    @property
    def complete(self) -> bool:
        return self._event.is_set

    def wait(self):
        """``value = yield from req.wait()`` — block until completion."""
        value = yield WaitEvent(self._event)
        if self._post is not None:
            value = self._post(value)
        return value

    def test(self):
        """Non-blocking completion probe; returns ``(done, value_or_None)``."""
        if not self._event.is_set:
            return False, None
        value = self._event.value
        if self._post is not None:
            value = self._post(value)
        return True, value


class World:
    """Shared runtime state: mailboxes, fabric, rank→node map, comm registry."""

    def __init__(
        self,
        sim: Simulator,
        size: int,
        fabric: Fabric | None = None,
        node_of: Callable[[int], int] | None = None,
        track_traffic: bool = True,
    ):
        if size <= 0:
            raise ValueError(f"world size must be positive, got {size}")
        self.sim = sim
        self.size = size
        self.fabric = fabric if fabric is not None else UniformFabric()
        self.node_of = node_of if node_of is not None else (lambda rank: 0)
        self._mailboxes: dict[tuple[int, int], _Mailbox] = {}
        self._comm_ids = itertools.count()
        self._split_registry: dict[tuple, dict] = {}
        self._msg_seq = itertools.count()
        #: rendezvous records of in-flight fast-path collectives, keyed by
        #: (cid, tag); see :mod:`repro.simmpi.fastcoll`
        self._fast_colls: dict[tuple, Any] = {}
        #: in-flight fast-path p2p flows, keyed (cid, dst) -> (src, tag) ->
        #: flow record; see :mod:`repro.simmpi.fastp2p`
        self._flows: dict[tuple, dict] = {}
        #: (cid, rank) pairs whose receives went through a wildcard-capable
        #: operation — their traffic stays on the message-level path
        self._p2p_degraded: set[tuple] = set()
        self.track_traffic = track_traffic
        #: aggregate traffic statistics (message count / bytes, split by scope)
        self.stats = TrafficStats()
        #: observability hook shared by every communicator of this world
        #: (see :mod:`repro.obs.tracer`); ``None`` disables span recording
        self.tracer = None
        #: shard-worker runtime (see :mod:`repro.simmpi.shard`); ``None``
        #: outside sharded execution.  Every dispatch on it below is
        #: gated on this attribute — lint rule SHARD001 enforces that no
        #: cross-shard state is reached except through the barrier
        #: exchange it implements.
        self.shard = None
        #: runtime protocol checker (see :mod:`repro.simmpi.sanitizer`);
        #: inherited from the simulator, ``None`` when sanitizing is off
        self.sanitizer = sim.sanitizer
        if self.sanitizer is not None:
            self.sanitizer.attach_world(self)

    def comm_world(self) -> "list[Communicator]":
        """Build COMM_WORLD: one communicator handle per rank."""
        cid = next(self._comm_ids)
        ranks = list(range(self.size))
        return [
            Communicator(self, cid, rank=i, group=ranks, parent=None)
            for i in range(self.size)
        ]

    def _mailbox(self, cid: int, dst: int) -> _Mailbox:
        key = (cid, dst)
        box = self._mailboxes.get(key)
        if box is None:
            box = self._mailboxes[key] = _Mailbox()
        return box


@dataclass
class TrafficStats:
    """Network accounting: the paper reports message counts and volume."""

    messages: int = 0
    bytes: int = 0
    inter_node_messages: int = 0
    inter_node_bytes: int = 0

    def record(self, nbytes: int, inter_node: bool) -> None:
        self.messages += 1
        self.bytes += nbytes
        if inter_node:
            self.inter_node_messages += 1
            self.inter_node_bytes += nbytes

    def record_bulk(self, messages: int, nbytes: int,
                    inter_node_messages: int, inter_node_bytes: int) -> None:
        """Aggregate form of :meth:`record` for a whole modeled level.

        Counter sums are order-free exact integers, so recording a
        collective's hops in one call is bit-identical to per-hop
        :meth:`record` calls (the vectorized per-level evaluators in
        :mod:`repro.simmpi.aggregate` use this).
        """
        self.messages += messages
        self.bytes += nbytes
        self.inter_node_messages += inter_node_messages
        self.inter_node_bytes += inter_node_bytes

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "inter_node_messages": self.inter_node_messages,
            "inter_node_bytes": self.inter_node_bytes,
        }


class Communicator:
    """One rank's handle on a group of ranks (mirrors ``MPI_Comm``).

    ``rank``/``size`` follow MPI semantics: ``rank`` is this process's index
    within ``group``; messages address peers by group-local rank.
    """

    def __init__(
        self,
        world: World,
        cid: int,
        rank: int,
        group: list[int],
        parent: "Communicator | None",
    ):
        self.world = world
        self.cid = cid
        self.rank = rank
        self._group = list(group)  # group[i] = world rank of comm rank i
        #: group size (plain attribute — hot on the collective fast path)
        self.size = len(self._group)
        #: node of each comm rank, precomputed (placement is immutable)
        self._nodes = [world.node_of(g) for g in self._group]
        self.parent = parent
        self._coll_seq = 0
        self._split_seq = 0
        #: collective-call counter for the runtime sanitizer's cross-rank
        #: sequence check (advanced only while sanitizing)
        self._san_seq = 0

    # ------------------------------------------------------------------ info
    def world_rank(self, rank: int | None = None) -> int:
        return self._group[self.rank if rank is None else rank]

    def node_of(self, rank: int) -> int:
        return self._nodes[rank]

    def group(self) -> list[int]:
        return list(self._group)

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise SimMPIError(f"{what} rank {rank} out of range [0, {self.size})")

    # ----------------------------------------------------------------- p2p
    def _flow_send_ok(self, dest: int, tag: int) -> bool:
        """True when a send may ride a flow record (see
        :mod:`repro.simmpi.fastp2p`): fast path on, deterministic tag, no
        observers attached, destination not degraded to the mailbox."""
        world = self.world
        return (world.sim.fast_p2p and tag >= 0
                and world.tracer is None and world.sanitizer is None
                and (self.cid, dest) not in world._p2p_degraded)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              nbytes: int | None = None) -> Request:
        """Post a non-blocking send; the message is buffered eagerly.

        ``nbytes`` overrides the payload's measured size (used by symbolic
        workloads that ship placeholder buffers with annotated wire sizes).
        With :attr:`Simulator.fast_p2p` the message rides a flow record
        instead of the mailbox (identical Request timing); the message
        path below is the bit-identical reference.
        """
        self._check_rank(dest, "destination")
        world = self.world
        if world.shard is not None and world.shard.remote(self, dest):
            return shard.shard_isend(self, payload, dest, tag, nbytes)
        if self._flow_send_ok(dest, tag):
            return fastp2p.fast_isend(self, payload, dest, tag, nbytes)
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        src_node = self.node_of(self.rank)
        dst_node = self.node_of(dest)
        # Stateful fabrics (NIC injection queues) schedule the arrival
        # themselves; plain fabrics expose only a transfer time.
        schedule = getattr(world.fabric, "transfer_schedule", None)
        if schedule is not None:
            arrival = schedule(size, src_node, dst_node, world.sim.now)
        else:
            arrival = world.sim.now + world.fabric.transfer_time(
                size, src_node, dst_node
            )
        if world.track_traffic:
            world.stats.record(size, src_node != dst_node)
        if world.tracer is not None:
            wrank = self.world_rank()
            world.tracer.metrics.inc("comm.messages", 1,
                                     rank=wrank, node=src_node)
            world.tracer.metrics.inc("comm.bytes", size,
                                     rank=wrank, node=src_node)
            if src_node != dst_node:
                world.tracer.metrics.inc("comm.inter_node_bytes", size,
                                         rank=wrank, node=src_node)
        msg = _Message(
            src=self.rank,
            tag=tag,
            payload=copy_payload(payload),
            nbytes=size,
            arrival=arrival,
            seq=next(world._msg_seq),
        )
        box = world._mailbox(self.cid, dest)
        world.sim.call_at(msg.arrival, box.deliver, msg)
        done = world.sim.event(name="isend")
        # Eager protocol: the send completes once the CPU overhead elapses.
        world.sim.call_at(
            world.sim.now + world.fabric.cpu_overhead(size), done.set, None
        )
        return Request(done)

    @_traced("p2p")
    def send(self, payload: Any, dest: int, tag: int = 0,
             nbytes: int | None = None):
        """Blocking send (eager): returns after the CPU send overhead.

        Dispatches to the closed-form flow path under
        :attr:`Simulator.fast_p2p`; the message-level path is the
        bit-identical reference.
        """
        self._check_rank(dest, "destination")
        world = self.world
        if world.shard is not None and world.shard.remote(self, dest):
            return shard.shard_send(self, payload, dest, tag, nbytes)
        if self._flow_send_ok(dest, tag):
            return fastp2p.fast_send(self, payload, dest, tag, nbytes)
        return self._send_message(payload, dest, tag, nbytes)

    def _send_message(self, payload, dest, tag, nbytes):
        req = self.isend(payload, dest, tag=tag, nbytes=nbytes)
        yield from req.wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a non-blocking receive; ``wait()`` returns the payload."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        world = self.world
        if world.shard is not None:
            if (source == ANY_SOURCE and world.shard.spans(self)) or (
                    source != ANY_SOURCE
                    and world.shard.remote(self, source)):
                raise shard.ShardError(
                    "irecv cannot match cross-shard messages (pending-"
                    "receive bookkeeping is mailbox-local); use a "
                    "blocking recv with an exact source, or shards=1"
                )
        if world.sim.fast_p2p:
            # Pending-receive bookkeeping lives in the mailbox: flush this
            # rank's flows into it and stay message-level from here on.
            fastp2p.degrade(self)
        ev = world.sim.event(name="irecv")
        box = world._mailbox(self.cid, self.rank)
        box.post_recv(_PendingRecv(source=source, tag=tag, event=ev,
                                   seq=next(world._msg_seq)))
        return Request(ev, post=lambda msg: msg.payload)

    @_traced("p2p")
    def sendrecv(self, payload: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Combined send+receive (deadlock-free pairwise exchange)."""
        req = self.isend(payload, dest, tag=sendtag)
        received = yield from self.recv(source=source, tag=recvtag)
        yield from req.wait()
        return received

    @_traced("p2p")
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking probe: wait until a matching message has arrived and
        return its envelope ``{"source", "tag", "nbytes"}`` without
        consuming it."""
        world = self.world
        box = world._mailbox(self.cid, self.rank)
        while True:
            info = self.iprobe(source=source, tag=tag)
            if info is not None:
                return info
            # Wait for the next delivery to this mailbox.
            ev = world.sim.event(name="probe")
            box.probe_waiters.append(ev)
            yield WaitEvent(ev)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking probe; returns the envelope or ``None``."""
        world = self.world
        if world.shard is not None:
            if (source == ANY_SOURCE and world.shard.spans(self)) or (
                    source != ANY_SOURCE
                    and world.shard.remote(self, source)):
                raise shard.ShardError(
                    "probe cannot observe cross-shard messages (envelopes "
                    "live in the sender's shard until the window barrier); "
                    "probe a shard-local source or run with shards=1"
                )
        if self.world.sim.fast_p2p:
            # Probing inspects the mailbox, so in-flight flows must land
            # there first (and stay there — degradation is sticky).
            fastp2p.degrade(self)
        box = self.world._mailbox(self.cid, self.rank)
        for msg in box.messages.values():
            if _Mailbox._matches(msg, source, tag):
                return {"source": msg.src, "tag": msg.tag,
                        "nbytes": msg.nbytes}
        return None

    @staticmethod
    def waitall(requests: list[Request]):
        """Complete every request; returns their values in order."""
        out = []
        for req in requests:
            value = yield from req.wait()
            out.append(value)
        return out

    def waitany(self, requests: list[Request]):
        """Return ``(index, value)`` of the first completed request."""
        if not requests:
            raise SimMPIError("waitany on an empty request list")
        for i, req in enumerate(requests):
            done, value = req.test()
            if done:
                return i, value
        # Merge the pending completion events into one.
        merged = self.world.sim.event(name=f"waitany:{self.cid}:{self.rank}")

        def _notify(_value):
            if not merged.is_set:
                merged.set(None)

        for req in requests:
            req._event.add_callback(_notify)
        yield WaitEvent(merged)
        for i, req in enumerate(requests):
            done, value = req.test()
            if done:
                return i, value
        raise SimMPIError("waitany woke without a completed request")

    @_traced("p2p")
    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             with_status: bool = False):
        """Blocking receive; returns the payload (or ``(payload, status)``).

        An exact ``(source, tag)`` receive dispatches to the closed-form
        flow path under :attr:`Simulator.fast_p2p`; wildcards degrade this
        rank to the bit-identical message-level path below (ANY_SOURCE
        matching needs the mailbox's cross-flow arbitration).
        """
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        world = self.world
        if world.shard is not None:
            if source == ANY_SOURCE:
                if world.shard.spans(self):
                    raise shard.ShardError(
                        "ANY_SOURCE receive on a communicator spanning "
                        "shards (cross-flow arbitration needs the global "
                        "mailbox); use an exact source or shards=1"
                    )
            elif world.shard.remote(self, source):
                return shard.shard_recv(self, source, tag, with_status)
        if world.sim.fast_p2p:
            if (source != ANY_SOURCE and tag >= 0
                    and world.tracer is None and world.sanitizer is None
                    and (self.cid, self.rank) not in world._p2p_degraded):
                return fastp2p.fast_recv(self, source, tag, with_status)
            if tag >= 0 or tag == ANY_TAG:
                fastp2p.degrade(self)
        return self._recv_message(source, tag, with_status)

    def _recv_message(self, source, tag, with_status):
        world = self.world
        ev = world.sim.event(name="recv")
        box = world._mailbox(self.cid, self.rank)
        box.post_recv(_PendingRecv(source=source, tag=tag, event=ev,
                                   seq=next(world._msg_seq)))
        msg: _Message = yield WaitEvent(ev)
        overhead = world.fabric.cpu_overhead(msg.nbytes)
        if overhead > 0:
            yield acquire_delay(overhead)
        if with_status:
            return msg.payload, {"source": msg.src, "tag": msg.tag,
                                 "nbytes": msg.nbytes}
        return msg.payload

    # ------------------------------------------------------------- pipeline
    def pipeline(self, steps):
        """Run a chain of data-dependent collective stages.

        ``steps`` is a sequence of stage tuples, identical in kinds and
        roots on every rank:

        ``("gather", root, payload)``
            every rank contributes ``payload``; the root's stage result is
            the rank-ordered list, everyone else's ``None``;
        ``("bcast", root, producer)``
            the root calls ``producer(prev)`` — ``prev`` being its result
            of the previous stage (``None`` on the first) — and broadcasts
            the returned payload; non-root ranks pass ``producer=None``.
            An optional fourth element overrides the modeled wire size in
            bytes (skeleton programs broadcast placeholder payloads).

        Returns this rank's list of per-stage results.  The reference
        path below simply drives the stages one collective at a time
        (each dispatching fast/message as usual, with its own span and
        sanitizer entry); under :attr:`Simulator.fast_p2p` on untraced,
        unsanitized worlds the whole chain fuses into a single rendezvous
        with one park/wake per rank and bit-identical virtual times (see
        :func:`repro.simmpi.fastp2p.fast_pipeline`) — the engine IMe's
        per-level gather→bcast→bcast exchange registers on.
        """
        world = self.world
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "pipeline", steps=steps)
        if (world.sim.fast_p2p and world.tracer is None
                and world.sanitizer is None):
            return fastp2p.fast_pipeline(self, steps)
        return self._pipeline_compose(steps)

    def _pipeline_compose(self, steps):
        out: list = []
        prev = None
        for st in steps:
            kind, root = st[0], st[1]
            if kind == "gather":
                res = yield from self.gather(st[2], root=root)
            elif kind == "bcast":
                payload = None
                if self.rank == root and st[2] is not None:
                    payload = st[2](prev)
                res = yield from self.bcast(
                    payload, root=root,
                    nbytes=st[3] if len(st) > 3 else None)
            else:
                raise SimMPIError(f"unknown pipeline stage kind {kind!r}")
            out.append(res)
            prev = res
        return out

    # ----------------------------------------------------------- collectives
    def _next_coll_tag(self) -> int:
        """Collective calls consume one internal tag, in program order.

        All ranks of a communicator execute the same sequence of collectives
        (an MPI requirement), so the per-rank counter yields matching tags.
        """
        self._coll_seq += 1
        return _COLL_TAG_BASE - self._coll_seq

    @staticmethod
    def _binomial_parent_children(vrank: int, size: int) -> tuple[int | None, list[int]]:
        """Binomial-tree neighbours for a virtual rank (root = 0)."""
        return _binomial_tree(vrank, size)

    def _coll_span(self, op_name: str, gen):
        """Drive a collective generator inside an observability span.

        Only reached with a tracer attached; the hot dispatchers below
        hand the underlying generator straight to the caller otherwise
        (same span brackets as :func:`_traced`, minus the per-call
        wrapper on the untraced path).
        """
        tracer = self.world.tracer
        wrank = self.world_rank()
        span = tracer.begin_span(
            op_name, cat="coll",
            pid=self.world.node_of(wrank), tid=wrank,
            t=self.world.sim.now, args={"comm": self.cid},
        )
        try:
            return (yield from gen)
        finally:
            tracer.end_span(span, t=self.world.sim.now)

    def bcast(self, payload: Any, root: int = 0, nbytes: int | None = None):
        """Binomial-tree broadcast; every rank returns the payload.

        With :attr:`Simulator.fast_collectives` the completion times are
        computed in closed form from the same cost model (see
        :mod:`repro.simmpi.fastcoll`); the message-level tree below is the
        validation reference.
        """
        if not 0 <= root < self.size:
            raise SimMPIError(f"root rank {root} out of range [0, {self.size})")
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "bcast", root)
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "bcast", payload=payload,
                                    root=root, nbytes=nbytes)
        gen = (fastcoll.fast_bcast(self, payload, root, nbytes)
               if world.sim.fast_collectives
               else self._bcast_message(payload, root, nbytes))
        if world.tracer is None:
            return gen
        return self._coll_span("bcast", gen)

    def _bcast_message(self, payload, root, nbytes):
        tag = self._next_coll_tag()
        size = self.size
        if size == 1:
            return copy_payload(payload)
        vrank = (self.rank - root) % size
        parent, children = self._binomial_parent_children(vrank, size)
        if parent is not None:
            payload = yield from self.recv(source=(parent + root) % size, tag=tag)
        data_bytes = nbytes
        for child in children:
            yield from self.send(payload, dest=(child + root) % size, tag=tag,
                                 nbytes=data_bytes)
        return payload

    def gather(self, payload: Any, root: int = 0):
        """Binomial-tree gather to root (MPICH's short-message schedule).

        Intermediate ranks aggregate their subtree's contributions and
        forward them upward, so the critical path is log₂(P) transfers.
        Root returns the rank-ordered list; everyone else returns None.
        """
        if not 0 <= root < self.size:
            raise SimMPIError(f"root rank {root} out of range [0, {self.size})")
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "gather", root)
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "gather", payload=payload,
                                    root=root)
        gen = (fastcoll.fast_gather(self, payload, root)
               if world.sim.fast_collectives
               else self._gather_message(payload, root))
        if world.tracer is None:
            return gen
        return self._coll_span("gather", gen)

    def _gather_message(self, payload, root):
        tag = self._next_coll_tag()
        size = self.size
        acc: dict[int, Any] = {self.rank: copy_payload(payload)}
        if size == 1:
            return [acc[self.rank]]
        vrank = (self.rank - root) % size
        parent, children = self._binomial_parent_children(vrank, size)
        for child in sorted(children, reverse=True):
            part = yield from self.recv(source=(child + root) % size, tag=tag)
            acc.update(part)
        if parent is not None:
            yield from self.send(acc, dest=(parent + root) % size, tag=tag)
            return None
        return [acc[r] for r in range(size)]

    def scatter(self, payloads: list | None, root: int = 0,
                nbytes: list | None = None):
        """Flat scatter from root; every rank returns its element.

        ``nbytes`` optionally overrides the modeled wire size per
        destination rank (root-only; skeleton programs scatter
        placeholder payloads).
        """
        if not 0 <= root < self.size:
            raise SimMPIError(f"root rank {root} out of range [0, {self.size})")
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "scatter", root)
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "scatter", payload=payloads,
                                    root=root, nbytes=nbytes)
        gen = (fastcoll.fast_scatter(self, payloads, root, nbytes)
               if world.sim.fast_collectives
               else self._scatter_message(payloads, root, nbytes))
        if world.tracer is None:
            return gen
        return self._coll_span("scatter", gen)

    def _scatter_message(self, payloads, root, nbytes=None):
        tag = self._next_coll_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommMismatchError(
                    f"scatter root needs {self.size} payloads, got "
                    f"{None if payloads is None else len(payloads)}"
                )
            mine = copy_payload(payloads[root])
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(
                        payloads[dst], dest=dst, tag=tag,
                        nbytes=None if nbytes is None else nbytes[dst])
            return mine
        item = yield from self.recv(source=root, tag=tag)
        return item

    def reduce(self, payload: Any, op: Callable = SUM, root: int = 0):
        """Binomial-tree reduction to root (op must be associative)."""
        if not 0 <= root < self.size:
            raise SimMPIError(f"root rank {root} out of range [0, {self.size})")
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "reduce", root)
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "reduce", payload=payload,
                                    root=root, op=op)
        gen = (fastcoll.fast_reduce(self, payload, op, root)
               if world.sim.fast_collectives
               else self._reduce_message(payload, op, root))
        if world.tracer is None:
            return gen
        return self._coll_span("reduce", gen)

    def _reduce_message(self, payload, op, root):
        tag = self._next_coll_tag()
        size = self.size
        acc = copy_payload(payload)
        if size == 1:
            return acc
        vrank = (self.rank - root) % size
        parent, children = self._binomial_parent_children(vrank, size)
        # Children are combined deepest-first so every rank receives from all
        # of its binomial children before forwarding to its parent.
        for child in sorted(children, reverse=True):
            item = yield from self.recv(source=(child + root) % size, tag=tag)
            acc = op(acc, item)
        if parent is not None:
            yield from self.send(acc, dest=(parent + root) % size, tag=tag)
            return None
        return acc

    def allreduce(self, payload: Any, op: Callable = SUM):
        # Untraced fast path: fused reduce+bcast — one suspension per rank,
        # bit-identical virtual times.  Traced (or message-level) runs keep
        # the composition so nested reduce/bcast spans appear as usual.
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "allreduce")
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "allreduce", payload=payload,
                                    op=op)
        if world.tracer is None:
            if world.sim.fast_collectives:
                return fastcoll.fast_allreduce(self, payload, op)
            return self._allreduce_compose(payload, op)
        return self._coll_span("allreduce", self._allreduce_compose(payload, op))

    def _allreduce_compose(self, payload, op):
        acc = yield from self.reduce(payload, op=op, root=0)
        acc = yield from self.bcast(acc, root=0)
        return acc

    def allgather(self, payload: Any):
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "allgather")
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "allgather", payload=payload)
        if world.tracer is None:
            if world.sim.fast_collectives:
                return fastcoll.fast_allgather(self, payload)
            return self._allgather_compose(payload)
        return self._coll_span("allgather", self._allgather_compose(payload))

    def _allgather_compose(self, payload):
        gathered = yield from self.gather(payload, root=0)
        gathered = yield from self.bcast(gathered, root=0)
        return gathered

    @_traced("coll")
    def gatherv(self, payload: Any, root: int = 0):
        """Variable-size gather: like :meth:`gather` (payloads may differ
        arbitrarily in size/shape per rank)."""
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "gatherv", root)
        out = yield from self.gather(payload, root=root)
        return out

    @_traced("coll")
    def scatterv(self, payloads: list | None, root: int = 0):
        """Variable-size scatter (per-rank payloads of any size)."""
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "scatterv", root)
        out = yield from self.scatter(payloads, root=root)
        return out

    @_traced("coll")
    def reduce_scatter(self, payloads: list, op: Callable = SUM):
        """Element-wise reduce over the per-destination payload lists, then
        scatter: rank ``i`` receives ``op``-reduction of every rank's
        ``payloads[i]``."""
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "reduce_scatter")
        if len(payloads) != self.size:
            raise CommMismatchError(
                f"reduce_scatter needs {self.size} payloads, got "
                f"{len(payloads)}"
            )
        reduced = yield from self.reduce(payloads, op=_elementwise(op), root=0)
        mine = yield from self.scatter(reduced, root=0)
        return mine

    @_traced("coll")
    def scan(self, payload: Any, op: Callable = SUM):
        """Inclusive prefix reduction: rank i gets op(v₀, …, vᵢ)."""
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "scan")
        gathered = yield from self.allgather(payload)
        acc = copy_payload(gathered[0])
        for item in gathered[1:self.rank + 1]:
            acc = op(acc, item)
        return acc

    @_traced("coll")
    def alltoall(self, payloads: list):
        """Pairwise exchange; returns the list indexed by source rank."""
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "alltoall")
        if len(payloads) != self.size:
            raise CommMismatchError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        if self.world.shard is not None and self.world.shard.spans(self):
            raise shard.ShardError(
                "alltoall on a communicator spanning shards is not "
                "supported (its receive side needs ANY_SOURCE matching); "
                "restructure on shard-local communicators or run shards=1"
            )
        tag = self._next_coll_tag()
        out: list[Any] = [None] * self.size
        out[self.rank] = copy_payload(payloads[self.rank])
        reqs = []
        for dst in range(self.size):
            if dst != self.rank:
                reqs.append(self.isend(payloads[dst], dest=dst, tag=tag))
        for _ in range(self.size - 1):
            item, status = yield from self.recv(tag=tag, with_status=True)
            out[status["source"]] = item
        for req in reqs:
            yield from req.wait()
        return out

    def barrier(self):
        """Synchronize all ranks (reduce + bcast of an empty token)."""
        world = self.world
        if world.sanitizer is not None:
            world.sanitizer.on_collective(self, "barrier")
        if world.shard is not None and world.shard.spans(self):
            return shard.shard_coll(self, "barrier")
        if world.tracer is None:
            if world.sim.fast_collectives:
                return fastcoll.fast_barrier(self)
            return self._barrier_compose()
        return self._coll_span("barrier", self._barrier_compose())

    def _barrier_compose(self):
        token = yield from self.reduce(0, op=SUM, root=0)
        yield from self.bcast(token, root=0)

    # ----------------------------------------------------------------- split
    @_traced("coll")
    def split(self, color: int, key: int | None = None) -> "Iterable":
        """Split into sub-communicators by color, ordered by (key, rank).

        Mirrors ``MPI_Comm_split``.  Returns the new communicator handle for
        this rank (``None`` if ``color`` is ``None``, the analogue of
        ``MPI_UNDEFINED``).
        """
        if key is None:
            key = self.rank
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_collective(self, "split")
        entries = yield from self.allgather((color, key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        group = [self._group[r] for (_k, r) in members]
        new_rank = [r for (_k, r) in members].index(self.rank)
        reg_key = (self.cid, self._split_seq, color)
        shared = self.world._split_registry.get(reg_key)
        if shared is None:
            if self.world.shard is not None:
                # Shard workers allocate cids independently; a counter
                # would diverge across workers, so derive a deterministic
                # structural cid instead.  cids are only dict keys —
                # never a modeled quantity — so the reference run's
                # integer cids and these tuples are interchangeable.
                shared = {"cid": ("s", self.cid, self._split_seq, color)}
            else:
                shared = {"cid": next(self.world._comm_ids)}
            self.world._split_registry[reg_key] = shared
        return Communicator(
            self.world, shared["cid"], rank=new_rank, group=group, parent=self
        )

    @_traced("coll")
    def split_type(self, split_type: str = COMM_TYPE_SHARED,
                   key: int | None = None):
        """``MPI_Comm_split_type``: group ranks sharing a node.

        This is the primitive the paper's monitoring framework uses to build
        per-node communicators (``MPI_COMM_TYPE_SHARED``).
        """
        if split_type != COMM_TYPE_SHARED:
            raise SimMPIError(f"unsupported split type: {split_type!r}")
        color = self.node_of(self.rank)
        comm = yield from self.split(color=color, key=key)
        return comm

    @_traced("coll")
    def dup(self):
        """Duplicate the communicator (collective)."""
        comm = yield from self.split(color=0, key=self.rank)
        return comm

    def __repr__(self) -> str:
        return (f"<Communicator cid={self.cid} rank={self.rank}/{self.size}>")
