"""Closed-form ("fast-path") collective engine.

The message-level collectives in :mod:`repro.simmpi.comm` spawn one
simulated message per binomial-tree hop, which costs mailbox bookkeeping,
event-heap traffic, and Python-generator overhead per hop — the dominant
wall-clock term in paper-scale sweeps.  This module computes every rank's
completion time *in closed form* from the same latency/bandwidth cost
model and suspends each rank exactly once, on a single wake event
scheduled at its completion time.  Byte/hop/inter-node counters are
recorded identically per modeled hop, so energy accounting,
``PowerTracer`` lanes, and Chrome-trace collective spans are unchanged.
It is enabled by ``Simulator(fast_collectives=True)`` — the default; the
message-level path is kept as the validation reference
(``fast_collectives=False``).

How a collective executes
-------------------------
All ranks of a collective meet at a per-``(cid, tag)`` rendezvous record
on the :class:`~repro.simmpi.comm.World`.  A rank whose causal inputs are
not yet known parks (:class:`~repro.simmpi.engine.Park` — no event object
at all).  The moment a rank's inputs become complete, a *cascade* computes
its data-ready time, models its sends (arrival times, payload copies,
traffic accounting), determines its completion time, and resumes any
parked dependents directly with ``Simulator.schedule_at``:

* **bcast/scatter** cascade *down* the tree: a rank's completion depends
  only on the entry times along its ancestor path (senders transmit
  eagerly, never waiting on receivers);
* **reduce/gather** cascade *up*: a rank folds its children — deepest
  subtree first, the message-level receive order, so floating-point
  reductions associate identically — once every child has contributed.

Causality holds without any time-travel: a cascade triggered at virtual
time *t* only ever computes completion times ``>= t``, because the chain
of ``max(entry, arrival) + cpu_overhead`` recurrences passes through the
arrival from the rank whose entry (at time *t*) completed the inputs.

The compositions (``allreduce``, ``allgather``, ``barrier``, ``scan``,
``reduce_scatter``, ``split``) are built on these primitives and need no
fast path of their own; ``alltoall`` intentionally stays message-level.

Equivalence contract
--------------------
For any fabric whose per-message cost is a pure function of ``(nbytes,
src_node, dst_node)`` — :class:`~repro.simmpi.fabric.UniformFabric`, or
:class:`~repro.cluster.network.ClusterFabric` without jitter or NIC
injection serialization — a fast-path run is *exactly* equivalent to a
message-level run: identical solver results (same reduction-tree
associativity, same copy-on-send semantics), bit-identical virtual times,
and therefore identical energy totals, plus identical
:meth:`~repro.simmpi.comm.TrafficStats.record` counters.
``tests/test_fast_collectives.py`` asserts this across all collectives and
communicator splits; ``docs/performance.md`` documents it.

Two details make the virtual times bit-identical rather than merely
approximately equal: :func:`_after_send` / :func:`_arrival` mirror the
float round trip of ``Simulator.call_at`` (``now + ((t - now))``) that the
message-level path incurs when scheduling deliveries and send
completions, and every wake uses ``Simulator.schedule_at`` (exact
absolute timestamps, never a relative delay).

With a *stateful* fabric (seeded jitter, ``serialize_injection``) the fast
path still charges the same cost model per modeled hop, but hops may
query the fabric in a different order than the message-level
interleaving, so runs remain deterministic per seed yet are not
guaranteed bit-identical between the two paths.

The fast path assumes the standard SPMD collective discipline the
message-level path already requires for tag matching: every member of a
communicator reaches each collective call site, and no member's *entry*
depends on another member's *completion* of that same collective.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

import numpy as np

from repro.memo import register_cache
from repro.simmpi import aggregate
from repro.simmpi.datatypes import copy_payload, payload_nbytes
from repro.simmpi.engine import Park, SleepUntil
from repro.simmpi.errors import CommMismatchError

#: Collective tags live below the valid point-to-point range so they can
#: never collide with user tags.  Defined here (and re-exported by
#: :mod:`repro.simmpi.comm`) so the fast paths can allocate tags with
#: plain arithmetic on ``comm._coll_seq`` instead of a method call.
_COLL_TAG_BASE = -1000


def _arrival(world, nbytes: int, src_node: int, dst_node: int,
             start: float) -> float:
    """Mailbox arrival time of a hop whose send starts at ``start``.

    Mirrors ``Communicator.isend`` (including the ``call_at`` relative
    round trip) so the returned float is bit-identical to the heap
    timestamp the message-level path would produce.
    """
    schedule = getattr(world.fabric, "transfer_schedule", None)
    if schedule is not None:
        raw = schedule(nbytes, src_node, dst_node, start)
    else:
        raw = start + world.fabric.transfer_time(nbytes, src_node, dst_node)
    return start + (raw - start)


def _after_send(t: float, overhead: float) -> float:
    """Sender-side completion of a blocking send starting at ``t``.

    Mirrors the eager protocol's ``call_at(now + cpu_overhead)`` float
    round trip.
    """
    return t + ((t + overhead) - t)


def _account_trace(tracer, nbytes: int, src_node: int, dst_node: int,
                   wrank: int) -> None:
    """Tracer metric lanes for one modeled hop (identical to ``isend``'s)."""
    metrics = tracer.metrics
    metrics.inc("comm.messages", 1, rank=wrank, node=src_node)
    metrics.inc("comm.bytes", nbytes, rank=wrank, node=src_node)
    if src_node != dst_node:
        metrics.inc("comm.inter_node_bytes", nbytes,
                    rank=wrank, node=src_node)


def _account(world, nbytes: int, src_node: int, dst_node: int,
             wrank: int) -> None:
    """Byte/hop/inter-node accounting, identical to ``isend``'s."""
    if world.track_traffic:
        world.stats.record(nbytes, src_node != dst_node)
    tracer = world.tracer
    if tracer is not None:
        _account_trace(tracer, nbytes, src_node, dst_node, wrank)


@register_cache
@functools.lru_cache(maxsize=None)
def _children_desc(vrank: int, size: int) -> tuple[int, ...]:
    """Binomial children sorted deepest-subtree-first (reduce fold order)."""
    from repro.simmpi.comm import _binomial_tree
    return tuple(sorted(_binomial_tree(vrank, size)[1], reverse=True))


@register_cache
@functools.lru_cache(maxsize=None)
def _tree(vrank: int, size: int):
    from repro.simmpi.comm import _binomial_tree
    return _binomial_tree(vrank, size)


@register_cache
@functools.lru_cache(maxsize=None)
def _child_counts(size: int) -> tuple[int, ...]:
    return tuple(len(_tree(v, size)[1]) for v in range(size))


@register_cache
@functools.lru_cache(maxsize=None)
def _children_table(size: int) -> tuple[tuple[int, ...], ...]:
    """Children of every virtual rank, indexed by vrank (hot-loop form)."""
    return tuple(_tree(v, size)[1] for v in range(size))


@register_cache
@functools.lru_cache(maxsize=None)
def _children_desc_table(size: int) -> tuple[tuple[int, ...], ...]:
    """Deepest-first children of every virtual rank, indexed by vrank."""
    return tuple(_children_desc(v, size) for v in range(size))


class _DownRec:
    """Rendezvous record for root-to-leaves collectives (bcast, scatter).

    All lists are indexed by virtual rank (bcast) or comm rank (scatter).
    ``arrival[v]``/``value[v]`` are filled by the parent's cascade; a rank
    arriving before them parks in ``procs[v]``.
    """

    __slots__ = ("entry", "procs", "arrival", "value", "compl", "nbytes",
                 "served")

    def __init__(self, size: int):
        self.entry: list = [None] * size
        self.procs: list = [None] * size
        self.arrival: list = [None] * size
        self.value: list = [None] * size
        self.compl: list = [0.0] * size
        self.nbytes = 0
        self.served = 0


class _UpRec:
    """Rendezvous record for leaves-to-root collectives (reduce, gather).

    ``arrival[v]``/``value[v]``/``nbytes_in[v]`` describe the message
    virtual rank ``v`` sent to its parent; ``pending[v]`` counts children
    that have not contributed yet.
    """

    __slots__ = ("entry", "procs", "arrival", "value", "nbytes_in", "acc",
                 "pending", "compl", "served")

    def __init__(self, size: int):
        self.entry: list = [None] * size
        self.procs: list = [None] * size
        self.arrival: list = [None] * size
        self.value: list = [None] * size
        self.nbytes_in: list = [0] * size
        self.acc: list = [None] * size
        self.pending: list = list(_child_counts(size))
        self.compl: list = [0.0] * size
        self.served = 0


# ---------------------------------------------------------------- bcast

def _bcast_cascade(comm, rec: _DownRec, key, root: int, size: int,
                   v: int, data, t_ready: float) -> None:
    """Model ``v``'s sends and completion; recurse into arrived children.

    The hot loop inlines :func:`_arrival` / :func:`_account` with every
    attribute lookup hoisted — this is the innermost loop of a fast-path
    run (one iteration per modeled hop).
    """
    world = comm.world
    sim = world.sim
    fabric = world.fabric
    nbytes = rec.nbytes
    overhead = fabric.cpu_overhead(nbytes)
    schedule = getattr(fabric, "transfer_schedule", None)
    transfer_time = fabric.transfer_time
    track = world.track_traffic
    stats_record = world.stats.record
    tracer = world.tracer
    nodes = comm._nodes
    group = comm._group
    arrival, value, entry, procs = rec.arrival, rec.value, rec.entry, rec.procs
    compl = rec.compl
    children_tbl = _children_table(size)
    stack = [(v, data, t_ready)]
    while stack:
        u, data, t = stack.pop()
        children = children_tbl[u]
        if children:
            ur = (u + root) % size
            src_node = nodes[ur]
            wrank = group[ur]
            for c in children:
                dst_node = nodes[(c + root) % size]
                if schedule is not None:
                    raw = schedule(nbytes, src_node, dst_node, t)
                else:
                    raw = t + transfer_time(nbytes, src_node, dst_node)
                arr = t + (raw - t)
                if track:
                    stats_record(nbytes, src_node != dst_node)
                if tracer is not None:
                    _account_trace(tracer, nbytes, src_node, dst_node, wrank)
                data_c = value[c] = copy_payload(data)
                t = t + ((t + overhead) - t)
                e = entry[c]
                if e is None:
                    arrival[c] = arr
                elif children_tbl[c]:
                    stack.append((c, data_c, max(e, arr) + overhead))
                else:
                    # Leaf child already waiting: complete it inline.
                    tc = max(e, arr) + overhead
                    compl[c] = tc
                    rec.served += 1
                    p = procs[c]
                    if p is not None:
                        sim.schedule_at(tc, p._step, data_c)
        compl[u] = t
        rec.served += 1
        p = procs[u]
        if p is not None:
            sim.schedule_at(t, p._step, value[u])
    if rec.served == size:
        del world._fast_colls[key]


def fast_bcast(comm, payload: Any, root: int, nbytes: int | None):
    """Closed-form binomial-tree broadcast (see module docstring)."""
    world = comm.world
    sim = world.sim
    comm._coll_seq = seq = comm._coll_seq + 1
    size = comm.size
    if size == 1:
        return copy_payload(payload)
    v = (comm.rank - root) % size
    key = (comm.cid, _COLL_TAG_BASE - seq)
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _DownRec(size)
    now = sim.now
    rec.entry[v] = now
    if v == 0:
        rec.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)
        _bcast_cascade(comm, rec, key, root, size, 0, payload, now)
        t = rec.compl[0]
        if t > now:
            yield SleepUntil(t)
        return payload
    arr = rec.arrival[v]
    if arr is None:
        return (yield Park(rec.procs, v))
    overhead = world.fabric.cpu_overhead(rec.nbytes)
    data = rec.value[v]
    if not _children_table(size)[v]:
        # Leaf with its message already delivered: no cascade needed.
        t = max(now, arr) + overhead
        rec.served += 1
        if rec.served == size:
            del colls[key]
        if t > now:
            yield SleepUntil(t)
        return data
    _bcast_cascade(comm, rec, key, root, size, v, data, max(now, arr) + overhead)
    t = rec.compl[v]
    if t > now:
        yield SleepUntil(t)
    return data


# ------------------------------------------------------- reduce / gather

def _up_cascade(comm, rec: _UpRec, key, root: int, size: int, v: int,
                fold: Callable, finalize: Callable | None = None) -> None:
    """Fold ``v``'s subtree, model its send upward, cascade to ancestors.

    ``fold(acc, item)`` combines one child contribution (``op`` for
    reduce, dict-merge for gather); called in deepest-first child order —
    the message-level receive order.  ``finalize(acc)`` post-processes the
    root's folded value before it is handed to a parked root process
    (gather's rank-ordered list).
    """
    world = comm.world
    sim = world.sim
    fabric = world.fabric
    children_desc = _children_desc_table(size)
    while True:
        t = rec.entry[v]
        acc = rec.acc[v]
        for c in children_desc[v]:
            t = max(t, rec.arrival[c]) + fabric.cpu_overhead(rec.nbytes_in[c])
            acc = fold(acc, rec.value[c])
        rec.acc[v] = acc
        if v == 0:
            compl = t
            result = acc if finalize is None else finalize(acc)
        else:
            parent = _tree(v, size)[0]
            vr = (v + root) % size
            pr = (parent + root) % size
            src_node = comm.node_of(vr)
            dst_node = comm.node_of(pr)
            abytes = payload_nbytes(acc)
            arr = _arrival(world, abytes, src_node, dst_node, t)
            _account(world, abytes, src_node, dst_node, comm.world_rank(vr))
            rec.arrival[v] = arr
            rec.value[v] = copy_payload(acc)
            rec.nbytes_in[v] = abytes
            compl, result = _after_send(t, fabric.cpu_overhead(abytes)), None
        rec.compl[v] = compl
        rec.served += 1
        p = rec.procs[v]
        if p is not None:
            sim.schedule_at(compl, p._step, result)
        if rec.served == size:
            del world._fast_colls[key]
            return
        if v == 0:
            return
        rec.pending[parent] -= 1
        if rec.pending[parent] or rec.entry[parent] is None:
            return
        v = parent


def fast_reduce(comm, payload: Any, op: Callable, root: int):
    """Closed-form binomial-tree reduction (message-level associativity)."""
    world = comm.world
    sim = world.sim
    comm._coll_seq = seq = comm._coll_seq + 1
    size = comm.size
    if size == 1:
        return copy_payload(payload)
    v = (comm.rank - root) % size
    key = (comm.cid, _COLL_TAG_BASE - seq)
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _UpRec(size)
    now = sim.now
    rec.entry[v] = now
    rec.acc[v] = copy_payload(payload)
    if rec.pending[v]:
        return (yield Park(rec.procs, v))
    _up_cascade(comm, rec, key, root, size, v, op)
    t = rec.compl[v]
    result = rec.acc[v] if v == 0 else None
    if t > now:
        yield SleepUntil(t)
    return result


def _merge(acc: dict, part: dict) -> dict:
    acc.update(part)
    return acc


def fast_gather(comm, payload: Any, root: int):
    """Closed-form binomial-tree gather (subtree dicts, like message-level)."""
    world = comm.world
    sim = world.sim
    comm._coll_seq = seq = comm._coll_seq + 1
    size = comm.size
    if size == 1:
        return [copy_payload(payload)]
    v = (comm.rank - root) % size
    key = (comm.cid, _COLL_TAG_BASE - seq)
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _UpRec(size)
    now = sim.now
    rec.entry[v] = now
    rec.acc[v] = {comm.rank: copy_payload(payload)}
    # pending == 0 means every child already contributed — true for leaves
    # at entry, and for inner ranks (even the root) arriving last.
    if rec.pending[v]:
        # Resumed with the finalized rank-ordered list if we are the root.
        return (yield Park(rec.procs, v))
    _up_cascade(comm, rec, key, root, size, v, _merge, _ordered_list)
    t = rec.compl[v]
    result = _ordered_list(rec.acc[0]) if v == 0 else None
    if t > now:
        yield SleepUntil(t)
    return result


# --------------------------------------------------------------- scatter

class _ScatterRec:
    """Rendezvous record for the flat scatter (indexed by comm rank)."""

    __slots__ = ("entry", "procs", "arrival", "value", "nbytes", "served")

    def __init__(self, size: int):
        self.entry: list = [None] * size
        self.procs: list = [None] * size
        self.arrival: list = [None] * size
        self.value: list = [None] * size
        self.nbytes: list = [0] * size
        self.served = 0


def fast_scatter(comm, payloads: list | None, root: int,
                 nbytes: list | None = None):
    """Closed-form flat scatter (root sends in destination-rank order).

    ``nbytes`` optionally overrides the modeled wire size per
    destination rank (skeleton programs send placeholder payloads).
    """
    world = comm.world
    sim = world.sim
    fabric = world.fabric
    comm._coll_seq = seq = comm._coll_seq + 1
    key = (comm.cid, _COLL_TAG_BASE - seq)
    size = comm.size
    rank = comm.rank
    if rank != root:
        colls = world._fast_colls
        rec = colls.get(key)
        if rec is None:
            rec = colls[key] = _ScatterRec(size)
        now = sim.now
        arr = rec.arrival[rank]
        if arr is None:
            rec.entry[rank] = now
            return (yield Park(rec.procs, rank))
        value = rec.value[rank]
        t = max(now, arr) + fabric.cpu_overhead(rec.nbytes[rank])
        rec.served += 1
        if rec.served == size:
            del world._fast_colls[key]
        if t > now:
            yield SleepUntil(t)
        return value
    if payloads is None or len(payloads) != size:
        raise CommMismatchError(
            f"scatter root needs {size} payloads, got "
            f"{None if payloads is None else len(payloads)}"
        )
    mine = copy_payload(payloads[root])
    if size == 1:
        return mine
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _ScatterRec(size)
    now = sim.now
    t = now
    src_node = comm.node_of(rank)
    wrank = comm.world_rank()
    # repro: allow[PERF002] -- flat sequential send chain, inherently O(ranks)
    for dst in range(size):
        if dst == root:
            continue
        pbytes = (payload_nbytes(payloads[dst]) if nbytes is None
                  else nbytes[dst])
        dst_node = comm.node_of(dst)
        arr = _arrival(world, pbytes, src_node, dst_node, t)
        _account(world, pbytes, src_node, dst_node, wrank)
        t = _after_send(t, fabric.cpu_overhead(pbytes))
        value = copy_payload(payloads[dst])
        p = rec.procs[dst]
        if p is not None:
            # Receiver already parked: its completion is computable now.
            compl = max(rec.entry[dst], arr) + fabric.cpu_overhead(pbytes)
            rec.served += 1
            sim.schedule_at(compl, p._step, value)
        else:
            rec.arrival[dst] = arr
            rec.value[dst] = value
            rec.nbytes[dst] = pbytes
    rec.served += 1
    if rec.served == size:
        del world._fast_colls[key]
    if t > now:
        yield SleepUntil(t)
    return mine


# ------------------------------------------- fused compositions (untraced)

class _FusedRec:
    """Rendezvous record for fused reduce+bcast compositions.

    Every member's completion depends on the root's folded value, which
    depends on every member's entry — so the whole collective is computed
    by whichever rank enters last, and every other rank parks exactly
    once.  Used only when no tracer is attached (the traced path keeps
    the reduce→bcast composition so nested spans match the message path).
    """

    __slots__ = ("entry", "procs", "acc", "remaining")

    def __init__(self, size: int):
        self.entry: list = [None] * size
        self.procs: list = [None] * size
        self.acc: list = [None] * size
        self.remaining = size


def _fused_times(comm, rec: _FusedRec, size: int, fold: Callable,
                 finalize: Callable | None):
    """Closed-form completion times/values of reduce(root 0) + bcast(root 0).

    Replays both phases with the exact recurrences of :class:`_UpRec` /
    :class:`_DownRec` (same fold order, same float round trips), evaluated
    in one topological pass per phase.  Returns ``(compl, values)`` lists
    indexed by rank.
    """
    world = comm.world
    fabric = world.fabric
    tracer = world.tracer
    if tracer is None and size >= aggregate.AGGREGATE_MIN_SIZE:
        venv = aggregate.vector_env(world)
        if venv is not None:
            return _fused_times_vec(comm, rec, size, fold, finalize, venv)
    cpu_overhead = fabric.cpu_overhead
    schedule = getattr(fabric, "transfer_schedule", None)
    transfer_time = fabric.transfer_time
    track = world.track_traffic
    stats_record = world.stats.record
    nodes = comm._nodes
    group = comm._group
    entry, acc = rec.entry, rec.acc
    children_desc = _children_desc_table(size)
    children_tbl = _children_table(size)
    # ---- reduce phase: children (always > parent) fold deepest-first
    arrival = [0.0] * size
    nbytes_in = [0] * size
    red_val: list = [None] * size
    red_compl = [0.0] * size
    # repro: allow[PERF002] -- retained scalar reference path (stateful fabrics)
    for v in range(size - 1, -1, -1):
        t = entry[v]
        a = acc[v]
        for c in children_desc[v]:
            t = max(t, arrival[c]) + cpu_overhead(nbytes_in[c])
            a = fold(a, red_val[c])
        acc[v] = a
        if v == 0:
            red_compl[0] = t
        else:
            parent = _tree(v, size)[0]
            abytes = payload_nbytes(a)
            src_node = nodes[v]
            dst_node = nodes[parent]
            if schedule is not None:
                raw = schedule(abytes, src_node, dst_node, t)
            else:
                raw = t + transfer_time(abytes, src_node, dst_node)
            arrival[v] = t + (raw - t)
            if track:
                stats_record(abytes, src_node != dst_node)
            if tracer is not None:
                _account_trace(tracer, abytes, src_node, dst_node, group[v])
            red_val[v] = copy_payload(a)
            nbytes_in[v] = abytes
            ovh = cpu_overhead(abytes)
            red_compl[v] = t + ((t + ovh) - t)
    # ---- bcast phase: entries are the reduce completions
    root_payload = acc[0] if finalize is None else finalize(acc[0])
    nb = payload_nbytes(root_payload)
    overhead = cpu_overhead(nb)
    compl = [0.0] * size
    values: list = [None] * size
    values[0] = root_payload
    barr = [0.0] * size
    # repro: allow[PERF002] -- retained scalar reference path (stateful fabrics)
    for v in range(size):
        if v == 0:
            t = red_compl[0]
        else:
            t = max(red_compl[v], barr[v]) + overhead
        data = values[v]
        children = children_tbl[v]
        if children:
            src_node = nodes[v]
            wr = group[v]
            for c in children:
                dst_node = nodes[c]
                if schedule is not None:
                    raw = schedule(nb, src_node, dst_node, t)
                else:
                    raw = t + transfer_time(nb, src_node, dst_node)
                barr[c] = t + (raw - t)
                if track:
                    stats_record(nb, src_node != dst_node)
                if tracer is not None:
                    _account_trace(tracer, nb, src_node, dst_node, wr)
                values[c] = copy_payload(data)
                t = t + ((t + overhead) - t)
        compl[v] = t
    return compl, values


def _fused_times_vec(comm, rec: _FusedRec, size: int, fold: Callable,
                     finalize: Callable | None, venv):
    """Aggregate form of :func:`_fused_times` (stateless fabrics only).

    The value fold is inherently sequential per parent (``fold`` is an
    arbitrary reduction), so it runs as one O(ranks) Python pass in the
    exact deepest-subtree-first order of the scalar walk; both phases'
    completion *times* are then one vectorized per-wave evaluation each
    (see :mod:`repro.simmpi.aggregate`).  Bit-identical values, times,
    and traffic totals.
    """
    world = comm.world
    entry, acc = rec.entry, rec.acc
    children_desc = _children_desc_table(size)
    red_val: list = [None] * size
    nbytes_in = np.zeros(size, dtype=np.int64)
    # repro: allow[PERF002] -- O(ranks) value fold; times are vectorized below
    for v in range(size - 1, -1, -1):
        a = acc[v]
        for c in children_desc[v]:
            a = fold(a, red_val[c])
        acc[v] = a
        if v:
            red_val[v] = copy_payload(a)
            nbytes_in[v] = payload_nbytes(a)
    nodes_v = np.asarray(comm._nodes, dtype=np.intp)
    entry_v = np.asarray(entry, dtype=float)
    red_compl, _arrival, inter_msgs, inter_bytes = aggregate.gather_times(
        venv, size, entry_v, nbytes_in, nodes_v)
    track = world.track_traffic
    if track:
        world.stats.record_bulk(size - 1, int(nbytes_in[1:].sum()),
                                inter_msgs, inter_bytes)
    # ---- bcast phase: entries are the reduce completions
    root_payload = acc[0] if finalize is None else finalize(acc[0])
    nb = payload_nbytes(root_payload)
    compl, inter = aggregate.bcast_times(venv, size, red_compl, nb, nodes_v)
    if track:
        world.stats.record_bulk(size - 1, nb * (size - 1), inter, nb * inter)
    values = [root_payload if v == 0 else copy_payload(root_payload)
              for v in range(size)]
    return compl.tolist(), values


def _fast_fused(comm, payload, fold: Callable, finalize: Callable | None):
    """Shared driver for the fused all-to-all-rooted compositions."""
    world = comm.world
    sim = world.sim
    # Two tags — the composed reduce's and bcast's — keep tags lockstep.
    seq = comm._coll_seq + 1
    comm._coll_seq = seq + 1
    size = comm.size
    if size == 1:
        mine = copy_payload(payload) if fold is not _merge \
            else {comm.rank: copy_payload(payload)}
        return copy_payload(mine if finalize is None else finalize(mine))
    v = comm.rank  # both composed phases are rooted at rank 0
    key = (comm.cid, _COLL_TAG_BASE - seq)
    colls = world._fast_colls
    rec = colls.get(key)
    if rec is None:
        rec = colls[key] = _FusedRec(size)
    now = sim.now
    rec.entry[v] = now
    rec.acc[v] = copy_payload(payload) if fold is not _merge \
        else {comm.rank: copy_payload(payload)}
    rec.remaining -= 1
    if rec.remaining:
        return (yield Park(rec.procs, v))
    del world._fast_colls[key]
    compl, values = _fused_times(comm, rec, size, fold, finalize)
    # repro: allow[PERF002] -- per-rank wake fan-out, one schedule per proc
    for u in range(size):
        p = rec.procs[u]
        if p is not None:
            sim.schedule_at(compl[u], p._step, values[u])
    t = compl[v]
    if t > now:
        yield SleepUntil(t)
    return values[v]


def _add(a, b):
    return a + b


def _ordered_list(acc: dict):
    return [acc[r] for r in range(len(acc))]


def fast_allreduce(comm, payload: Any, op: Callable):
    """Fused reduce+bcast: one park/wake per rank, identical virtual times."""
    return _fast_fused(comm, payload, op, None)


def fast_allgather(comm, payload: Any):
    """Fused gather+bcast of the rank-ordered list."""
    return _fast_fused(comm, payload, _merge, _ordered_list)


def fast_barrier(comm):
    """Fused barrier (reduce+bcast of an empty token, result discarded)."""
    yield from _fast_fused(comm, 0, _add, None)
    return None
