"""Simulated MPI substrate.

A deterministic, discrete-event simulation of an MPI runtime.  Rank programs
are Python generator functions scheduled cooperatively over a virtual clock;
communication costs (latency, bandwidth, tree depth) are charged in virtual
time so that the timing behaviour of a message-passing machine is preserved
without real processes or a real interconnect.

The public surface mirrors the mpi4py conventions the paper's code relies on:

* lowercase, object-based operations (``send``/``recv``/``bcast``/``gather``)
  that accept arbitrary picklable payloads (numpy arrays are passed by copy),
* ``Comm_split`` / ``Comm_split_type(COMM_TYPE_SHARED)`` used by the
  monitoring framework to build per-node communicators,
* barriers, non-blocking ``isend``/``irecv`` with request objects.

Because every rank program is a generator, *all* blocking operations are
generator functions and must be invoked as ``data = yield from comm.recv(...)``.
"""

from repro.simmpi.engine import Simulator, Process, Delay, Now, SimEvent
from repro.simmpi.comm import (
    Communicator,
    World,
    Request,
    ANY_SOURCE,
    ANY_TAG,
    COMM_TYPE_SHARED,
    MAX,
    MIN,
    SUM,
    PROD,
)
from repro.simmpi.cart import CartComm, create_cart, dims_create
from repro.simmpi.fabric import Fabric, UniformFabric, ZeroFabric
from repro.simmpi.errors import (
    SimMPIError,
    RankAbort,
    CommMismatchError,
    TruncationError,
    DeadlockError,
)

__all__ = [
    "Simulator",
    "Process",
    "Delay",
    "Now",
    "SimEvent",
    "Communicator",
    "World",
    "Request",
    "ANY_SOURCE",
    "ANY_TAG",
    "COMM_TYPE_SHARED",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "CartComm",
    "create_cart",
    "dims_create",
    "Fabric",
    "UniformFabric",
    "ZeroFabric",
    "SimMPIError",
    "RankAbort",
    "CommMismatchError",
    "TruncationError",
    "DeadlockError",
]
