"""Load-test harness for the campaign daemon (``repro loadtest``).

Spawns a daemon on an ephemeral port with a **fresh** cache root, then
drives it with synthetic clients through four phases:

* **cold** — one ``POST /run`` of the full §5 paper grid (72 analytic
  configurations) streamed through the single-flight scheduler's fork
  pool; every point is a cache miss by construction.
* **warm** — thousands of single-config ``POST /batch`` requests,
  round-robin over the grid from ``--threads`` concurrent clients; every
  request is an L1 hit, and the p50/p99 request latencies are the
  daemon's serving overhead.
* **dedup** — N clients barrier-released onto *identical* cold requests
  (a fresh seed, so nothing is cached); the scheduler's launched/
  coalesced deltas prove N requests cost one computation.
* **batch** — a sequence of cold per-request ``/run`` evaluations versus
  one cold ``/batch`` over equally many fresh configurations; the
  per-config speedup is the batched analytic engine doing less work,
  not a measurement artifact (both sides include full HTTP round trips).

The report lands in ``BENCH_serve.json`` (``--write``), one section per
mode (``full``/``quick``); ``--check`` fails on 2x-style regressions
against the committed baseline, and always fails if dedup launched more
than one computation.  Wall-clock timing is the measurand throughout,
hence the DET allow markers.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import sys
import tempfile
import threading
import time
from pathlib import Path

SCHEMA_VERSION = 1
#: --check tolerance: fail only when a metric degrades by more than 2x
REGRESSION_FACTOR = 2.0
#: latency guards additionally require the measured value to exceed
#: this floor: 2x of a sub-millisecond p99 is within OS-scheduler noise
#: on a loaded host, and the acceptance bar for warm serving is 10 ms.
LATENCY_FLOOR_S = 0.005
#: throughput guard floor, same reasoning from the other side: warm
#: req/s on a shared box swings ~2.5x run to run, while the regression
#: class this guards against (per-request stalls on the hit path)
#: collapses throughput by >100x.  The guard fires below
#: min(baseline/2, this).
THROUGHPUT_FLOOR_RPS = 300.0

#: the §5.1 evaluation grid as a /run body (same spec as configs/paper.yaml)
PAPER_SPEC = """\
schema: 1
experiment:
  mode: analytic
  algorithms: [ime, scalapack]
  matrix_sizes: [8640, 17280, 25920, 34560]
  ranks: [144, 576, 1296]
  shapes: [full, half-1socket, half-2sockets]
  repetitions: 10
  seed: 0
"""


def _single_spec(algorithm: str, n: int, ranks: int, shape: str,
                 seed: int) -> str:
    """A one-task /run body (used for the cold per-request phases)."""
    return (f"schema: 1\n"
            f"experiment:\n"
            f"  mode: analytic\n"
            f"  algorithms: [{algorithm}]\n"
            f"  matrix_sizes: [{n}]\n"
            f"  ranks: [{ranks}]\n"
            f"  shapes: [{shape}]\n"
            f"  repetitions: 10\n"
            f"  seed: {seed}\n")


def _fresh_config(index: int, seed: int) -> dict:
    """A canonical analytic config off the cached grid (fresh seed)."""
    algorithms = ("ime", "scalapack")
    sizes = (8640, 17280, 25920, 34560)
    ranks = (144, 576, 1296)
    return {
        "mode": "analytic",
        "algorithm": algorithms[index % 2],
        "n": sizes[index % 4],
        "ranks": ranks[index % 3],
        "shape": "full",
        "repetitions": 10,
        "seed": seed,
    }


def quantile(sorted_values: list[float], q: float) -> float:
    """Deterministic nearest-rank quantile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class Client:
    """One synthetic client: a persistent HTTP connection to the daemon."""

    def __init__(self, port: int, timeout: float = 300.0):
        self._conn = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=timeout)

    def request(self, method: str, path: str, body: str | None = None):
        """→ (status, parsed-JSON body or NDJSON line list)."""
        self._conn.request(method, path,
                           body=body.encode() if body else None)
        response = self._conn.getresponse()
        raw = response.read()
        if response.headers.get("Connection") == "close" or \
                response.will_close:
            self._conn.close()
        text = raw.decode()
        if response.headers.get_content_type() == "application/x-ndjson":
            return response.status, [json.loads(line)
                                     for line in text.splitlines()]
        return response.status, json.loads(text) if text else None

    def close(self) -> None:
        self._conn.close()


def _phase_cold(port: int) -> tuple[dict, list[dict]]:
    client = Client(port)
    t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    status, lines = client.request("POST", "/run", PAPER_SPEC)
    wall = time.perf_counter() - t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    client.close()
    if status != 200:
        raise RuntimeError(f"cold /run failed: HTTP {status}: {lines}")
    points = [line for line in lines if line["type"] == "point"]
    errors = [line for line in lines if line["type"] == "error"]
    if errors or not points:
        raise RuntimeError(f"cold /run returned errors: {errors}")
    report = {
        "tasks": len(points),
        "from_cache": sum(1 for p in points if p["cached"]),
        "wall_s": wall,
    }
    return report, [p["config"] for p in points]


def _phase_warm(port: int, configs: list[dict], rounds: int,
                threads: int) -> dict:
    # Untimed priming pass: first-touch costs (code paths, allocator,
    # per-thread connections) belong to none of the measured requests.
    primer = Client(port)
    for config in configs:
        status, _ = primer.request("POST", "/batch",
                                   json.dumps({"configs": [config]}))
        if status != 200:
            raise RuntimeError(f"warm priming failed: HTTP {status}")
    primer.close()
    jobs: list[dict] = [configs[i % len(configs)]
                       for i in range(rounds * len(configs))]
    latencies: list[list[float]] = [[] for _ in range(threads)]
    hits = [0] * threads
    errors: list[str] = []
    lock = threading.Lock()
    cursor = {"next": 0}

    def worker(slot: int) -> None:
        client = Client(port)
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(jobs):
                    break
                cursor["next"] = index + 1
            body = json.dumps({"configs": [jobs[index]]})
            t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
            status, payload = client.request("POST", "/batch", body)
            latencies[slot].append(time.perf_counter() - t0)  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
            if status != 200:
                with lock:
                    errors.append(f"HTTP {status}: {payload}")
                break
            hits[slot] += payload["from_cache"]
        client.close()

    pool = [threading.Thread(target=worker, args=(slot,))
            for slot in range(threads)]
    t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    if errors:
        raise RuntimeError(f"warm phase failed: {errors[0]}")
    flat = sorted(lat for bucket in latencies for lat in bucket)
    return {
        "requests": len(flat),
        "priming_requests": len(configs),
        "threads": threads,
        "rounds": rounds,
        "hit_fraction": sum(hits) / max(1, len(flat)),
        "p50_s": quantile(flat, 0.50),
        "p99_s": quantile(flat, 0.99),
        "max_s": flat[-1] if flat else 0.0,
        "throughput_rps": len(flat) / wall if wall > 0 else 0.0,
        "wall_s": wall,
    }


def _phase_dedup(port: int, clients: int, seed: int) -> dict:
    stats = Client(port)
    _, before = stats.request("GET", "/stats")
    body = _single_spec("ime", 34560, 1296, "full", seed)
    barrier = threading.Barrier(clients)
    failures: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        try:
            client = Client(port)
            barrier.wait()
            status, lines = client.request("POST", "/run", body)
            point_ok = status == 200 and any(
                line["type"] == "point" for line in lines
            )
            if not point_ok:
                with lock:
                    failures.append(f"HTTP {status}")
            client.close()
        except Exception as exc:
            with lock:
                failures.append(repr(exc))

    pool = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    if failures:
        raise RuntimeError(f"dedup phase failed: {failures[0]}")
    _, after = stats.request("GET", "/stats")
    stats.close()
    launched = (after["scheduler"]["launched"]
                - before["scheduler"]["launched"])
    coalesced = (after["scheduler"]["coalesced"]
                 - before["scheduler"]["coalesced"])
    return {
        "clients": clients,
        "launched": launched,
        "coalesced": coalesced,
        "factor": clients / max(1, launched),
        "wall_s": wall,
    }


def _phase_batch(port: int, configs_per_side: int, seed: int) -> dict:
    client = Client(port, timeout=600.0)
    # Per-request side: cold single-task /run requests, sequentially —
    # each one is a full run_analytic repetition loop in a pool worker.
    loop_t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    for index in range(configs_per_side):
        config = _fresh_config(index, seed + index)
        status, lines = client.request(
            "POST", "/run",
            _single_spec(config["algorithm"], config["n"], config["ranks"],
                         config["shape"], config["seed"]),
        )
        if status != 200:
            raise RuntimeError(f"batch-loop /run failed: HTTP {status}")
    loop_wall = time.perf_counter() - loop_t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    # Batched side: one /batch over equally many *different* fresh
    # configurations (disjoint seeds, so both sides start cold).
    batch_configs = [_fresh_config(index, seed + configs_per_side + index)
                     for index in range(configs_per_side)]
    batch_t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    status, payload = client.request(
        "POST", "/batch", json.dumps({"configs": batch_configs})
    )
    batch_wall = time.perf_counter() - batch_t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
    client.close()
    if status != 200 or payload["from_cache"] != 0:
        raise RuntimeError(
            f"batch phase failed: HTTP {status}, payload {payload!r:.200}"
        )
    return {
        "configs": configs_per_side,
        "loop_wall_s": loop_wall,
        "batch_wall_s": batch_wall,
        "per_config_speedup": (loop_wall / batch_wall
                               if batch_wall > 0 else 0.0),
    }


def run_loadtest(mode: str = "full", jobs: int = 4,
                 threads: int = 0) -> dict:
    """Run all four phases against a freshly spawned daemon.

    ``threads`` = 0 scales the warm-phase client count to the CPU count.
    """
    import os

    from repro.serve.app import create_server

    if threads <= 0:
        threads = max(1, os.cpu_count() or 1)
    quick = mode == "quick"
    cache_root = tempfile.mkdtemp(prefix="repro-loadtest-")
    server = create_server(port=0, jobs=jobs, cache_dir=cache_root)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        cold, configs = _phase_cold(port)
        warm = _phase_warm(port, configs,
                           rounds=2 if quick else 14,
                           threads=min(threads, 8) if quick else threads)
        dedup = _phase_dedup(port, clients=8 if quick else 32, seed=990001)
        batch = _phase_batch(port, configs_per_side=4 if quick else 16,
                             seed=880001)
        stats_client = Client(port)
        _, stats = stats_client.request("GET", "/stats")
        stats_client.close()
    finally:
        server.shutdown_all()
    total = (1 + warm["priming_requests"] + warm["requests"]
             + dedup["clients"] + batch["configs"] + 1)
    return {
        "mode": mode,
        "jobs": jobs,
        "requests_total": total,
        "cold": cold,
        "warm": warm,
        "dedup": dedup,
        "batch": batch,
        "daemon_stats": {
            "cache": stats["cache"],
            "scheduler": stats["scheduler"],
        },
    }


def check_regression(section: dict, baseline: dict | None) -> list[str]:
    """Hard invariants always; 2x-style guards when a baseline exists."""
    failures = []
    if section["dedup"]["launched"] != 1:
        failures.append(
            f"dedup: {section['dedup']['clients']} identical cold requests "
            f"launched {section['dedup']['launched']} computations "
            f"(expected exactly 1)"
        )
    if section["cold"]["from_cache"] != 0:
        failures.append("cold phase saw cache hits on a fresh root")
    if section["warm"]["hit_fraction"] < 1.0:
        failures.append(
            f"warm phase hit fraction {section['warm']['hit_fraction']:.3f}"
            f" < 1.0"
        )
    if baseline is None:
        return failures
    checks = [
        ("warm p99_s", section["warm"]["p99_s"],
         max(baseline["warm"]["p99_s"] * REGRESSION_FACTOR,
             LATENCY_FLOOR_S), "<="),
        ("warm throughput_rps", section["warm"]["throughput_rps"],
         min(baseline["warm"]["throughput_rps"] / REGRESSION_FACTOR,
             THROUGHPUT_FLOOR_RPS), ">="),
        ("batch per_config_speedup", section["batch"]["per_config_speedup"],
         baseline["batch"]["per_config_speedup"] / REGRESSION_FACTOR, ">="),
    ]
    for label, value, bound, op in checks:
        ok = value <= bound if op == "<=" else value >= bound
        if not ok:
            failures.append(
                f"{label}: {value:.4g} violates {op} {bound:.4g} "
                f"(baseline x{REGRESSION_FACTOR:g} guard)"
            )
    return failures


def format_report(report: dict) -> str:
    warm, dedup, batch = report["warm"], report["dedup"], report["batch"]
    lines = [
        f"loadtest [{report['mode']}]: {report['requests_total']} requests "
        f"(jobs={report['jobs']})",
        f"  cold : {report['cold']['tasks']} tasks in "
        f"{report['cold']['wall_s']:.2f}s",
        f"  warm : {warm['requests']} requests x {warm['threads']} threads  "
        f"p50 {warm['p50_s'] * 1e3:.2f} ms  p99 {warm['p99_s'] * 1e3:.2f} ms  "
        f"{warm['throughput_rps']:.0f} req/s",
        f"  dedup: {dedup['clients']} identical cold clients -> "
        f"{dedup['launched']} computation(s), {dedup['coalesced']} coalesced "
        f"(factor {dedup['factor']:.0f}x)",
        f"  batch: {batch['configs']} configs  loop {batch['loop_wall_s']:.2f}s"
        f" vs batch {batch['batch_wall_s']:.2f}s  -> "
        f"{batch['per_config_speedup']:.1f}x per config",
    ]
    return "\n".join(lines)


def load_report(path: Path) -> dict | None:
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return report if report.get("schema") == SCHEMA_VERSION else None


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="small CI variant (fewer rounds and clients)")
    parser.add_argument("--jobs", "-j", type=int, default=4,
                        help="daemon compute workers (default 4)")
    parser.add_argument("--threads", type=int, default=0,
                        help="synthetic warm-phase clients (default 0 = "
                             "one per CPU; on a GIL runtime, clients "
                             "beyond the core count measure the OS "
                             "scheduler's queueing, not the daemon)")
    parser.add_argument("--out", metavar="PATH", default="BENCH_serve.json",
                        help="report file (default BENCH_serve.json)")
    parser.add_argument("--write", action="store_true",
                        help="merge this run's section into the report file")
    parser.add_argument("--check", action="store_true",
                        help="fail on regressions vs the report file "
                             "(and always on dedup/hit-path violations)")
    parser.add_argument("--json", action="store_true",
                        help="print the section as JSON")


def build_parser(prog: str = "loadtest") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Load-test the campaign daemon "
                    "(maintains BENCH_serve.json)",
    )
    add_arguments(parser)
    return parser


def main(argv=None, prog: str = "loadtest") -> int:
    return run_from_args(build_parser(prog).parse_args(argv))


def run_from_args(args) -> int:
    mode = "quick" if args.quick else "full"
    section = run_loadtest(mode=mode, jobs=args.jobs, threads=args.threads)
    print(format_report(section))
    if args.json:
        print(json.dumps(section, indent=2))
    path = Path(args.out)
    existing = load_report(path)
    status = 0
    if args.check:
        baseline = (existing or {}).get("modes", {}).get(mode)
        failures = check_regression(section, baseline)
        if baseline is None:
            print(f"check: no {mode} baseline in {path}; "
                  f"hard invariants only")
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print("check: OK")
    if args.write:
        report = existing or {"schema": SCHEMA_VERSION, "modes": {}}
        report["modes"][mode] = section
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return status
