"""``repro serve`` — argparse front-end for the campaign daemon."""

from __future__ import annotations

import argparse
import sys


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (default 8642; 0 = ephemeral)")
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="fork-pool compute workers (default 2)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache root (defaults match `repro run`: "
                             "$REPRO_CACHE_DIR, else the repo-local "
                             "cache dir; 'off' serves from the "
                             "in-memory L1 alone)")
    parser.add_argument("--cache-size", metavar="BYTES", default=None,
                        help="disk-tier bound with K/M/G suffixes, e.g. "
                             "64M (default unbounded); least-recently-"
                             "used entries are evicted first")
    parser.add_argument("--l1-entries", type=int, default=1024,
                        help="in-memory tier entry bound (default 1024)")


def run_from_args(args) -> int:
    from repro.experiments.cache_tiers import parse_size
    from repro.serve.app import create_server

    max_bytes = None
    if args.cache_size is not None:
        try:
            max_bytes = parse_size(args.cache_size)
        except ValueError as exc:
            print(f"--cache-size: {exc}", file=sys.stderr)
            return 2
    server = create_server(args.host, args.port, jobs=args.jobs,
                           cache_dir=args.cache_dir, max_bytes=max_bytes,
                           l1_entries=args.l1_entries)
    host, port = server.server_address[:2]
    root = server.tiers.disk.root.resolve() if server.tiers.disk else "off"
    bound = f"{max_bytes}B" if max_bytes is not None else "unbounded"
    print(f"repro serve: http://{host}:{port} "
          f"(jobs={args.jobs}, cache={root} [{bound}], "
          f"l1={args.l1_entries} entries)", flush=True)
    print(f"model {server.model[:12]}  calibration {server.calibration[:12]}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown_all()
    return 0
