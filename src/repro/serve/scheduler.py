"""Single-flight compute scheduler over a persistent fork pool.

Every cold request the daemon serves funnels through here, and this
module is the **only** place serve-layer code is allowed to touch the
compute path (SRV001 enforces that): handlers hold a
:class:`Flight` and wait; the scheduler owns the worker pool, the
in-flight table, and the write-back into the cache tiers.

Single-flight dedup: flights are keyed by cache address.  When N
identical cold requests arrive concurrently, the first creates the
flight and launches one pool task; the other N-1 join the same flight
(``coalesced`` counts them) and every waiter is released by the same
completion.  The cache write-back happens *before* waiters are released,
so a released waiter re-reading the tiers always hits.

Workers run with the disk cache disabled (``REPRO_CACHE_DIR=off`` set in
the pool initializer): the daemon is the sole writer of its cache root,
which keeps the journal-tracked eviction accounting (and the ``--cache-size``
bound) single-process and exact.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading


def _worker_init() -> None:
    # Workers compute from scratch and return plain dicts; the daemon
    # process is the one writer of the (bounded, journal-tracked) root.
    os.environ["REPRO_CACHE_DIR"] = "off"
    # A terminal Ctrl-C reaches the whole process group; shutdown is the
    # daemon's job (close() terminates the pool), not each worker's.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _worker_run(task) -> dict:
    from repro.experiments.cache import result_to_dict
    from repro.experiments.sweep import _compute_task
    from repro.memo import reset_hot_caches

    result = _compute_task(task)  # repro: allow[SRV001] -- the scheduler IS the canonical compute path
    row = result_to_dict(result)
    # Long-lived pool workers walk many (n, ranks) shapes; drop the
    # module-level memo tables between tasks (the sweep-worker idiom).
    reset_hot_caches()
    return row


class Flight:
    """One in-flight computation; N waiters share it."""

    __slots__ = ("address", "meta", "done", "row", "error", "waiters")

    def __init__(self, address: str, meta=None):
        self.address = address
        self.meta = meta
        self.done = threading.Event()
        self.row: dict | None = None
        self.error: BaseException | None = None
        self.waiters = 1

    def wait(self, timeout: float | None = None) -> dict:
        if not self.done.wait(timeout):
            raise TimeoutError(f"flight {self.address[:12]} timed out")
        if self.error is not None:
            raise self.error
        return self.row


class SingleFlightScheduler:
    """Address-keyed single-flight dispatch onto a fork process pool."""

    def __init__(self, jobs: int = 2, store=None):
        """``store(flight, row)`` is called exactly once per completed
        flight, before any waiter is released — the daemon passes the
        cache-tier write-back here (``flight.meta`` carries whatever
        context ``submit`` was given, e.g. the (config, fingerprint)
        pair the tiers key by)."""
        self._store = store
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}
        self.launched = 0
        self.coalesced = 0
        self.failed = 0
        ctx = multiprocessing.get_context("fork")
        self._pool = ctx.Pool(processes=max(1, jobs),
                              initializer=_worker_init)

    def submit(self, address: str, task, meta=None) -> Flight:
        """Launch (or join) the flight computing ``task``."""
        with self._lock:
            flight = self._flights.get(address)
            if flight is not None:
                flight.waiters += 1
                self.coalesced += 1
                return flight
            flight = Flight(address, meta)
            self._flights[address] = flight
            self.launched += 1
        self._pool.apply_async(
            _worker_run, (task,),
            callback=lambda row, f=flight: self._finish(f, row, None),
            error_callback=lambda exc, f=flight: self._finish(f, None, exc),
        )
        return flight

    def _finish(self, flight: Flight, row: dict | None,
                error: BaseException | None) -> None:
        # Runs on the pool's result-handler thread.  Order matters:
        # write-back, then retire the flight, then release the waiters —
        # a waiter that re-reads the cache after wait() must hit.
        if error is None and self._store is not None:
            try:
                self._store(flight, row)
            except BaseException as exc:  # surface store failures to waiters
                error = exc
        flight.row, flight.error = row, error
        if error is not None:
            with self._lock:
                self.failed += 1
        with self._lock:
            self._flights.pop(flight.address, None)
        flight.done.set()

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._flights)

    def stats(self) -> dict:
        with self._lock:
            return {
                "launched": self.launched,
                "coalesced": self.coalesced,
                "failed": self.failed,
                "inflight": len(self._flights),
            }

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()
