"""The campaign daemon: HTTP/JSON serving of analytic/DES campaign points.

One long-lived process owns the cache tiers
(:class:`~repro.experiments.cache_tiers.TieredResultCache`) and the
single-flight scheduler (:mod:`repro.serve.scheduler`); request handler
threads only look up, submit, and stream.  The wire contract is the
repo's existing one, re-served:

* ``POST /run`` — the body **is** a YAML experiment spec, the same text
  ``repro run config.yaml`` takes (``?grid=quick|skeleton`` selects the
  spec's other grids).  The response streams NDJSON: a header line, one
  ``point`` line per task as it completes, and a ``done`` line.  Each
  point carries the task's canonical config and cache address — served
  results share cache entries with ``repro run``/``repro sweep`` byte
  for byte.
* ``POST /batch`` — a JSON list of canonical analytic config dicts
  (exactly the ``config`` objects ``/run`` echoes); misses are evaluated
  through the batched analytic engine instead of one loop per request.
* ``GET /stats`` — tier hit/miss/eviction counters, scheduler
  launched/coalesced counts, request counters.
* ``GET /health`` — liveness plus the calibration/model fingerprints.

Versioning: every address includes the model fingerprint, so a client
pinning ``?model=<fp>`` is rejected with 409 when the server's model
changed — the wire-level form of the cache's no-staleness property.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.cluster.machine import marconi_a3
from repro.experiments.cache import (
    _cache_root,
    calibration_fingerprint,
    model_fingerprint,
    result_to_dict,
)
from repro.experiments.cache_tiers import TieredResultCache
from repro.experiments.spec import SpecError, compile_tasks, load_text
from repro.experiments.sweep import _task_config, _task_machine, task_from_config
from repro.perfmodel.calibration import DEFAULT_CALIBRATION
from repro.serve.scheduler import SingleFlightScheduler

#: bumped when the wire schema (not the cache schema) changes
WIRE_SCHEMA = 1
#: per-flight wait bound: paper-scale analytic tasks are sub-second, DES
#: validation points are minutes; beyond this something is wedged
COMPUTE_TIMEOUT_S = 900.0

_GRIDS = ("experiment", "quick", "skeleton")


@functools.lru_cache(maxsize=64)
def _fingerprint_for(machine) -> str:
    return model_fingerprint(DEFAULT_CALIBRATION, machine)


class CampaignServer(ThreadingHTTPServer):
    """HTTP server owning the tiers, the scheduler, and the counters."""

    daemon_threads = True
    # Bursts of simultaneous clients (the single-flight case the daemon
    # exists for) must not overflow the listen backlog into resets.
    request_queue_size = 128

    def __init__(self, address, *, tiers: TieredResultCache,
                 scheduler: SingleFlightScheduler,
                 compute_timeout_s: float = COMPUTE_TIMEOUT_S):
        super().__init__(address, _Handler)
        self.tiers = tiers
        self.scheduler = scheduler
        self.compute_timeout_s = compute_timeout_s
        self.calibration = calibration_fingerprint(DEFAULT_CALIBRATION)
        self.model = _fingerprint_for(marconi_a3())
        self.started = time.monotonic()  # repro: allow[DET001] -- uptime reporting
        self.counters_lock = threading.Lock()
        self.requests: dict[str, int] = {}

    def handle_error(self, request, client_address) -> None:
        # Keep-alive clients that vanish mid-read are routine under load;
        # everything else keeps the stdlib traceback.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionResetError, BrokenPipeError,
                            TimeoutError)):
            return
        super().handle_error(request, client_address)

    def count(self, endpoint: str) -> None:
        with self.counters_lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def stats(self) -> dict:
        with self.counters_lock:
            requests = dict(self.requests)
        return {
            "schema": WIRE_SCHEMA,
            "uptime_s": time.monotonic() - self.started,  # repro: allow[DET001] -- uptime reporting
            "calibration": self.calibration,
            "model": self.model,
            "requests": requests,
            "cache": self.tiers.stats(),
            "scheduler": self.scheduler.stats(),
        }

    def shutdown_all(self) -> None:
        self.shutdown()
        self.server_close()
        self.scheduler.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Responses are written as separate header/body segments; without
    # TCP_NODELAY the second segment waits out Nagle vs delayed-ACK
    # (~40 ms per request — dwarfing the sub-ms warm hit path).
    disable_nagle_algorithm = True
    server: CampaignServer  # narrowed for readability

    # quiet by default; the daemon's own log line per request is noise at
    # thousands of requests per loadtest
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------- plumbing
    def _send_json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------ GET
    def do_GET(self) -> None:  # noqa: N802 - stdlib method name
        path = urlparse(self.path).path
        if path == "/health":
            self.server.count("health")
            self._send_json(200, {
                "ok": True,
                "schema": WIRE_SCHEMA,
                "calibration": self.server.calibration,
                "model": self.server.model,
            })
        elif path == "/stats":
            self.server.count("stats")
            self._send_json(200, self.server.stats())
        else:
            self._send_json(404, {"error": "not-found", "path": path})

    # ----------------------------------------------------------------- POST
    def do_POST(self) -> None:  # noqa: N802 - stdlib method name
        url = urlparse(self.path)
        if url.path == "/run":
            self.server.count("run")
            self._handle_run(url)
        elif url.path == "/batch":
            self.server.count("batch")
            self._handle_batch()
        else:
            self._send_json(404, {"error": "not-found", "path": url.path})

    # ----------------------------------------------------------------- /run
    def _handle_run(self, url) -> None:
        t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- serving latency reporting
        query = parse_qs(url.query)
        grid = query.get("grid", ["experiment"])[0]
        if grid not in _GRIDS:
            self._send_json(400, {"error": "bad-grid", "grid": grid,
                                  "choices": list(_GRIDS)})
            return
        try:
            text = self._read_body().decode("utf-8")
        except UnicodeDecodeError:
            self._send_json(400, {"error": "body-not-utf8"})
            return
        try:
            spec, warnings = load_text(text, "<request>")
        except SpecError as exc:
            self._send_json(400, {
                "error": "spec",
                "issues": [issue.format() for issue in exc.issues],
            })
            return
        try:
            tasks = compile_tasks(spec, quick=(grid == "quick"),
                                  skeleton=(grid == "skeleton"))
        except ValueError as exc:
            self._send_json(400, {"error": "grid", "detail": str(exc)})
            return

        fingerprints = [_fingerprint_for(_task_machine(t)) for t in tasks]
        pin = query.get("model", [None])[0]
        if pin is not None and any(fp != pin for fp in fingerprints):
            self._send_json(409, {
                "error": "model-mismatch",
                "pinned": pin,
                "served": sorted(set(fingerprints)),
            })
            return

        tiers, scheduler = self.server.tiers, self.server.scheduler
        points = []
        for task, fingerprint in zip(tasks, fingerprints):
            config = _task_config(task)
            address = tiers.address(config, fingerprint)
            row = tiers.get(config, fingerprint)
            flight = None
            if row is None:
                # Submit every miss before streaming: misses of one
                # request compute in parallel across the pool, and
                # identical concurrent requests coalesce per address.
                flight = scheduler.submit(address, task,
                                          meta=(config, fingerprint))
            points.append((task, config, address, row, flight))

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()

        def line(obj: dict) -> None:
            self.wfile.write((json.dumps(obj, sort_keys=True) + "\n").encode())
            self.wfile.flush()

        line({
            "type": "header",
            "schema": WIRE_SCHEMA,
            "grid": grid,
            "tasks": len(tasks),
            "calibration": self.server.calibration,
            "warnings": [issue.format() for issue in warnings],
        })
        cached = 0
        for task, config, address, row, flight in points:
            if flight is not None:
                try:
                    row = flight.wait(self.server.compute_timeout_s)
                except BaseException as exc:
                    line({"type": "error", "label": task.label,
                          "detail": str(exc)})
                    continue
            else:
                cached += 1
            line({
                "type": "point",
                "label": task.label,
                "config": config,
                "address": address,
                "cached": flight is None,
                "result": row,
                "wall_s": time.perf_counter() - t0,  # repro: allow[DET001,DET101] -- serving latency reporting
            })
        line({
            "type": "done",
            "tasks": len(tasks),
            "from_cache": cached,
            "wall_s": time.perf_counter() - t0,  # repro: allow[DET001,DET101] -- serving latency reporting
        })

    # --------------------------------------------------------------- /batch
    def _handle_batch(self) -> None:
        t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- serving latency reporting
        from repro.experiments.runner import run_analytic_batch

        try:
            payload = json.loads(self._read_body().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "bad-json", "detail": str(exc)})
            return
        configs = payload.get("configs") if isinstance(payload, dict) else None
        if not isinstance(configs, list) or not configs:
            self._send_json(400, {
                "error": "bad-batch",
                "detail": "body must be {\"configs\": [<config>, ...]}",
            })
            return
        pin = payload.get("model") if isinstance(payload, dict) else None
        if pin is not None and pin != self.server.model:
            self._send_json(409, {"error": "model-mismatch", "pinned": pin,
                                  "served": [self.server.model]})
            return
        tasks = []
        for index, config in enumerate(configs):
            try:
                if not isinstance(config, dict):
                    raise ValueError("config must be a mapping")
                task = task_from_config(config)
                if task.mode != "analytic":
                    raise ValueError("/batch serves analytic configs only")
            except (ValueError, TypeError) as exc:
                self._send_json(400, {"error": "bad-config", "index": index,
                                      "detail": str(exc)})
                return
            tasks.append(task)

        tiers = self.server.tiers
        fingerprint = self.server.model
        rows: list[tuple] = []
        misses: list[int] = []
        for index, task in enumerate(tasks):
            config = _task_config(task)
            row = tiers.get(config, fingerprint)
            rows.append((task, config, row))
            if row is None:
                misses.append(index)
        if misses:
            # One vectorized pass over all cold configs: base times are
            # shared across each config's repetitions and energy priced
            # per occupancy class — same bytes, far fewer flops than a
            # loop of per-request evaluations.  The daemon stays the
            # sole cache writer (cache=None inside the batch engine);
            # keys are the sweep-level configs, so /batch results land
            # at the exact addresses /run and ``repro sweep`` use.
            requests = [
                {
                    "algorithm": rows[i][0].algorithm,
                    "n": rows[i][0].n,
                    "ranks": rows[i][0].ranks,
                    "shape": rows[i][0].shape_value,
                    "repetitions": rows[i][0].repetitions,
                    "base_seed": rows[i][0].seed,
                    "power_cap_w": rows[i][0].power_cap_w,
                }
                for i in misses
            ]
            results = run_analytic_batch(requests, cache=None)
            for index, result in zip(misses, results):
                task, config, _ = rows[index]
                row = result_to_dict(result)
                tiers.put(config, fingerprint, row)
                rows[index] = (task, config, row)
        body = [
            {
                "label": task.label,
                "config": config,
                "address": tiers.address(config, fingerprint),
                "result": row,
            }
            for task, config, row in rows
        ]
        self._send_json(200, {
            "schema": WIRE_SCHEMA,
            "model": fingerprint,
            "count": len(body),
            "from_cache": len(tasks) - len(misses),
            "results": body,
            "wall_s": time.perf_counter() - t0,  # repro: allow[DET001,DET101] -- serving latency reporting
        })


def create_server(host: str = "127.0.0.1", port: int = 0, *,
                  jobs: int = 2,
                  cache_dir: str | None = None,
                  max_bytes: int | None = None,
                  l1_entries: int = 1024,
                  compute_timeout_s: float = COMPUTE_TIMEOUT_S) -> CampaignServer:
    """Build a ready-to-serve daemon (port 0 = ephemeral, for tests).

    ``cache_dir`` follows the CLI precedence: explicit value beats
    ``$REPRO_CACHE_DIR`` beats ``.repro-cache/``; ``"off"`` serves from
    the in-memory L1 alone.
    """
    if cache_dir is not None:
        root = None if cache_dir.strip().lower() in ("", "0", "off", "none") \
            else cache_dir
    else:
        resolved = _cache_root()
        root = None if resolved is None else str(resolved)
    tiers = TieredResultCache(root, max_bytes=max_bytes,
                              l1_entries=l1_entries)

    def store(flight, row: dict) -> None:
        # Runs on the scheduler's completion thread, before waiters are
        # released: a handler that re-reads the tiers after wait() hits.
        config, fingerprint = flight.meta
        tiers.put(config, fingerprint, row)

    scheduler = SingleFlightScheduler(jobs=jobs, store=store)
    return CampaignServer((host, port), tiers=tiers, scheduler=scheduler,
                          compute_timeout_s=compute_timeout_s)
