"""Sweep-as-a-service: the persistent campaign daemon.

``repro serve`` keeps one process resident so repeated campaign traffic
— figure rebuilds, config sweeps from CI, exploratory what-if batches —
amortizes everything a cold ``repro run`` pays per invocation: interpreter
and import start-up, calibration fingerprinting, cache directory scans,
and (above all) recomputation of configurations any earlier request
already priced.

The daemon is three performance layers over the existing experiment
stack, each independently testable:

* bounded cache tiers (:mod:`repro.experiments.cache_tiers`) — an
  in-memory L1 LRU over the content-addressed disk L2, with
  journal-tracked LRU eviction under ``--cache-size`` and per-tier
  counters surfaced at ``/stats``;
* single-flight dedup (:mod:`repro.serve.scheduler`) — concurrent
  identical cold requests coalesce onto one fork-pool computation;
* batched analytic evaluation (``POST /batch`` →
  :func:`repro.experiments.runner.run_analytic_batch`) — one vectorized
  pass over a whole config batch instead of a loop of per-request runs.

The wire format is the repo's canonical one: ``/run`` bodies are the
same YAML ``repro run`` takes, ``/batch`` configs are the canonical
cache-key dicts, and every served result is bit-identical to (and
shares disk entries with) its CLI counterpart.  See ``docs/serving.md``.
"""

from repro.serve.app import CampaignServer, create_server
from repro.serve.scheduler import Flight, SingleFlightScheduler

__all__ = [
    "CampaignServer",
    "Flight",
    "SingleFlightScheduler",
    "create_server",
]
