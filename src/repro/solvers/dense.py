"""Sequential reference solvers and accuracy metrics.

These are the ground truth the simulated parallel solvers are validated
against.  ``gaussian_elimination`` is the textbook algorithm ScaLAPACK
parallelizes (row reduction with partial pivoting, 2/3·n³ + O(n²) flops);
``gauss_jordan`` is the full-elimination variant IMe's table reduction is
related to.  Both are written with vectorized row operations (per the
project's performance guides) but clarity wins over speed here — the
parallel implementations carry the performance model.
"""

from __future__ import annotations

import numpy as np


class SingularMatrixError(ValueError):
    """The elimination hit a (numerically) zero pivot."""


def _check_system(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"coefficient matrix must be square, got {a.shape}")
    if b.shape != (a.shape[0],):
        raise ValueError(
            f"rhs shape {b.shape} incompatible with matrix {a.shape}"
        )
    return a, b


def gaussian_elimination(a: np.ndarray, b: np.ndarray,
                         pivoting: bool = True) -> np.ndarray:
    """Solve ``a @ x = b`` by row reduction with partial pivoting.

    Partial pivoting (§2.2): swap rows so the diagonal element is the
    largest in its column, guarding against the numerical instability of
    small pivots.
    """
    a, b = _check_system(a, b)
    n = a.shape[0]
    a = a.copy()
    b = b.copy()
    for k in range(n - 1):
        if pivoting:
            p = k + int(np.argmax(np.abs(a[k:, k])))
            if p != k:
                a[[k, p]] = a[[p, k]]
                b[[k, p]] = b[[p, k]]
        pivot = a[k, k]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at column {k}")
        m = a[k + 1:, k] / pivot
        a[k + 1:, k:] -= np.outer(m, a[k, k:])
        b[k + 1:] -= m * b[k]
    if a[n - 1, n - 1] == 0.0:
        raise SingularMatrixError(f"zero pivot at column {n - 1}")
    # Back substitution.
    x = np.empty(n)
    for k in range(n - 1, -1, -1):
        x[k] = (b[k] - a[k, k + 1:] @ x[k + 1:]) / a[k, k]
    return x


def gauss_jordan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve by full (Jordan) elimination without pivoting.

    Requires a matrix with nonzero leading pivots (e.g. diagonally
    dominant) — the same applicability condition as the pivot-free IMe.
    """
    a, b = _check_system(a, b)
    n = a.shape[0]
    aug = np.concatenate([a.copy(), b[:, None].copy()], axis=1)
    for k in range(n):
        pivot = aug[k, k]
        if pivot == 0.0:
            raise SingularMatrixError(f"zero pivot at column {k}")
        aug[k] /= pivot
        rows = np.arange(n) != k
        aug[rows] -= np.outer(aug[rows, k], aug[k])
    return aug[:, n]


def ge_flops(n: int) -> float:
    """Arithmetic complexity of Gaussian Elimination: 2/3·n³ + O(n²) (§2)."""
    return (2.0 / 3.0) * n ** 3 + 2.0 * n ** 2


def residual_norm(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """‖a·x − b‖₂."""
    return float(np.linalg.norm(np.asarray(a) @ np.asarray(x) - np.asarray(b)))


def relative_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """‖a·x − b‖ / (‖a‖·‖x‖ + ‖b‖): scale-free accuracy check."""
    a = np.asarray(a)
    x = np.asarray(x)
    b = np.asarray(b)
    denom = np.linalg.norm(a) * np.linalg.norm(x) + np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return residual_norm(a, x, b) / denom
