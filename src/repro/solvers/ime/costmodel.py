"""Published IMe/IMeP cost formulas (§2.1) — the analytic-mode inputs.

All counts are exactly the paper's:

* flops: ``3/2·n³ + O(n²)`` (sequential and parallel — "the flops remain
  the same");
* memory occupation: ``2n² + 3n`` sequential, ``2n² + 2nN + 3n`` on N nodes;
* messages: ``M_IMeP = n² + 2(N−1)n + 2(N−1)``;
* volume (floats): ``V_IMeP = (N+2)n² + 2(N−1)n``.

The per-level decompositions (used to build execution timelines) distribute
these totals the way the algorithm does: compute decays linearly across
levels (the active window shrinks), the pivot-column broadcast carries
``n−l`` floats at level ``l``, the last-row gather carries the ``n``
row entries, and the h broadcast carries the auxiliary pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FLOAT_BYTES = 8


@dataclass(frozen=True)
class ImeCostModel:
    """Closed-form cost counts for IMe/IMeP."""

    name: str = "IMe"

    # ------------------------------------------------------------- totals
    @staticmethod
    def flops(n: int) -> float:
        return 1.5 * n ** 3 + 4.0 * n ** 2

    @staticmethod
    def memory_floats(n: int, n_ranks: int = 1) -> float:
        if n_ranks <= 1:
            return 2.0 * n ** 2 + 3.0 * n
        return 2.0 * n ** 2 + 2.0 * n * n_ranks + 3.0 * n

    @staticmethod
    def messages(n: int, n_ranks: int) -> float:
        """M_IMeP: total message count across the run (§2.1)."""
        N = n_ranks
        return n ** 2 + 2.0 * (N - 1) * n + 2.0 * (N - 1)

    @staticmethod
    def volume_floats(n: int, n_ranks: int) -> float:
        """V_IMeP: total floats exchanged across the run (§2.1)."""
        N = n_ranks
        return (N + 2.0) * n ** 2 + 2.0 * (N - 1) * n

    # ------------------------------------------------------ per-level series
    @staticmethod
    def level_flops_per_rank(n: int, n_ranks: int) -> np.ndarray:
        """Per-rank flops at each level: 3n(n−l)/N (sums to 3/2·n³/N)."""
        levels = np.arange(n, dtype=np.float64)
        return 3.0 * n * (n - levels) / n_ranks

    @staticmethod
    def ft_level_flops_per_rank(n: int, n_data_ranks: int,
                                n_checksums: int = 0) -> np.ndarray:
        """Per-level flops of the fault-tolerant run: the data-rank share
        3n(n−l)/(N−1), plus — on the checksum rank, which passes its
        ``n_checksums`` weighted columns through both the subtracted
        update and the added normalization correction — 2c(n−l) extra."""
        levels = np.arange(n, dtype=np.float64)
        return (3.0 * n * (n - levels) / n_data_ranks
                + 2.0 * n_checksums * (n - levels))
        """Pivot-column broadcast payload at each level: (n−l) floats."""
        levels = np.arange(n, dtype=np.float64)
        return FLOAT_BYTES * (n - levels)

    @staticmethod
    def level_gather_bytes(n: int) -> np.ndarray:
        """Last-row gather payload at each level: n floats in total."""
        return np.full(n, FLOAT_BYTES * float(n))

    @staticmethod
    def level_aux_bcast_bytes(n: int) -> np.ndarray:
        """Auxiliary-quantities broadcast: (ĥ_l, p) — two floats."""
        return np.full(n, 2.0 * FLOAT_BYTES)

    @staticmethod
    def collectives_per_level() -> int:
        """Tree collectives on the critical path of one level."""
        return 3  # gather(last row) + bcast(h) + bcast(pivot column)

    # --------------------------------------------------------------- checks
    @classmethod
    def volume_floats_from_levels(cls, n: int, n_ranks: int) -> float:
        """Algorithm-level volume under the paper's accounting convention:
        a broadcast to N−1 peers counts as N−1 copies and the per-level
        column broadcast ships the full n-element column t∗,n+l (our
        implementation trims it to the active window — a strict saving, so
        this reconciliation intentionally over-counts to match §2.1)."""
        N = n_ranks
        col_bcast = (N - 1) * float(n) * n
        gather = cls.level_gather_bytes(n).sum() / FLOAT_BYTES
        h_bcast = (N - 1) * cls.level_aux_bcast_bytes(n).sum() / FLOAT_BYTES
        init = (N - 1) * n  # initialization broadcast of t∗,2n
        return col_bcast + gather + h_bcast + init
