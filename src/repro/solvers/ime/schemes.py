"""The alternative IMe parallelization schemes of §2.1.

The paper enumerates three ways to parallelize the fundamental formula:

i.   **column-wise** — the scheme IMeP uses (``repro.solvers.ime.parallel``)
     "because its characteristic fits the integration with the fault
     tolerance requirements better than the others";
ii.  **row-wise** — "symmetrically, the node computing the last row t_l,∗
     should make it available to all the others and h^(l) is shared";
iii. **block-wise** — "combining row-wise and column-wise parallelization".

This module implements (ii) and (iii) so the choice can be studied as an
ablation (see ``benchmarks/test_scheme_ablation.py``): row-wise needs only
*one* broadcast per level (the pivot row) at the cost of replicating the
auxiliary quantities everywhere, and block-wise trades a 2D decomposition's
smaller per-rank broadcasts for two broadcasts per level along grid rows
and columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.dense import SingularMatrixError
from repro.solvers.scalapack.grid import ProcessGrid


def _cyclic(n: int, size: int, rank: int) -> np.ndarray:
    return np.arange(rank, n, size)


# ------------------------------------------------------------------ row-wise
def ime_rowwise_program(ctx, comm, system=None, charge_compute: bool = True):
    """Row-wise IMeP: rows cyclically distributed, h replicated.

    Per level the owner of row ``l`` broadcasts the active pivot-row
    segment plus the pivot; every rank inhibits its own active rows and
    advances its full (shared) replica of h.  One collective per level.
    """
    rank, size = comm.rank, comm.size
    master = 0
    if rank == master:
        if system is None:
            raise ValueError("the master rank needs the input system")
        a = np.asarray(system.a, dtype=np.float64)
        b = np.asarray(system.b, dtype=np.float64)
        n = a.shape[0]
        d = np.diag(a).copy()
        if np.any(d == 0.0):
            raise SingularMatrixError("IMe requires nonzero diagonal entries")
        right = a.T / d[:, None]
        shards = [(n, right[_cyclic(n, size, r), :].copy(), b.copy())
                  for r in range(size)]
    else:
        shards = None
    n, r_local, h = yield from comm.scatter(shards, root=master)
    mine = _cyclic(n, size, rank)
    local_of = {int(g): i for i, g in enumerate(mine)}

    for level in range(n):
        owner = level % size
        # "the node computing the last row t_l,∗ should make it available
        # to all the others" — broadcast the active pivot-row segment.
        if rank == owner:
            lrow = local_of[level]
            p = r_local[lrow, level]
            if p == 0.0:
                raise SingularMatrixError(
                    f"zero inhibition pivot at level {level}"
                )
            payload = (r_local[lrow, :].copy(), p)
        else:
            payload = None
        m, p = yield from comm.bcast(payload, root=owner)
        m = m.copy()
        m[level] = 0.0

        # Inhibit the active window of the locally-owned rows.
        active = mine >= level
        if active.any():
            chat = r_local[active, level] / p
            # repro: allow[PERF001] -- alternative-scheme reference; kept level-wise for clarity
            r_local[active, :] -= np.outer(chat, m)
            r_local[active, level] = chat

        # "h^(l) is shared": every rank advances its full replica.
        hl = h[level] / p
        h -= m * hl
        h[level] = hl

        if charge_compute:
            # Same published per-level cost, split across the ranks.
            yield from ctx.compute(flops=3.0 * n * (n - level) / size)

    if rank == master:
        return h / d
    return None


# ---------------------------------------------------------------- block-wise
@dataclass(frozen=True)
class BlockwiseOptions:
    grid: ProcessGrid | None = None
    charge_compute: bool = True


def ime_blockwise_program(ctx, comm, system=None,
                          options: BlockwiseOptions | None = None):
    """Block-wise IMeP: a Pr×Pc grid owns cyclic (rows × columns) tiles.

    Per level two broadcasts run: the owner process-*column* of table
    column ``n+l`` broadcasts its active segment along grid rows, and the
    owner process-*row* of row ``l`` broadcasts its segment along grid
    columns.  h is replicated per process column (each rank holds the h
    entries of its own columns), advanced with the broadcast pivot data.
    The solution is assembled on world rank 0.
    """
    opts = options or BlockwiseOptions()
    nprocs = comm.size
    grid = opts.grid or ProcessGrid.squarest(nprocs)
    if grid.size != nprocs:
        raise ValueError(
            f"grid {grid} needs {grid.size} processes, world has {nprocs}"
        )
    myrow, mycol = grid.coords(comm.rank)
    row_comm = yield from comm.split(color=myrow, key=mycol)
    col_comm = yield from comm.split(color=mycol, key=myrow)

    master = 0
    if comm.rank == master:
        if system is None:
            raise ValueError("the master rank needs the input system")
        a = np.asarray(system.a, dtype=np.float64)
        b = np.asarray(system.b, dtype=np.float64)
        n = a.shape[0]
        d = np.diag(a).copy()
        if np.any(d == 0.0):
            raise SingularMatrixError("IMe requires nonzero diagonal entries")
        right = a.T / d[:, None]
        shards = []
        for r in range(nprocs):
            pr, pc = grid.coords(r)
            rows = _cyclic(n, grid.nprow, pr)
            cols = _cyclic(n, grid.npcol, pc)
            shards.append((
                n,
                right[np.ix_(rows, cols)].copy(),
                b[cols].copy(),  # h shard for this rank's columns
            ))
    else:
        shards = None
    n, r_local, h_local = yield from comm.scatter(shards, root=master)
    my_rows = _cyclic(n, grid.nprow, myrow)
    my_cols = _cyclic(n, grid.npcol, mycol)
    lrow_of = {int(g): i for i, g in enumerate(my_rows)}
    lcol_of = {int(g): i for i, g in enumerate(my_cols)}

    for level in range(n):
        pc_l = level % grid.npcol   # process column owning table column n+l
        pr_l = level % grid.nprow   # process row owning row l

        # Pivot-row segment (for my columns) down my process column.
        if myrow == pr_l:
            payload = r_local[lrow_of[level], :].copy()
        else:
            payload = None
        m_seg = yield from col_comm.bcast(payload, root=pr_l)

        # The owner process column reads the pivot off its segment and
        # shares it across its process rows.
        p_candidate = (float(m_seg[lcol_of[level]]) if mycol == pc_l
                       else None)
        p = yield from row_comm.bcast(p_candidate, root=pc_l)
        if p == 0.0:
            raise SingularMatrixError(f"zero inhibition pivot at level {level}")

        # Pivot-column active segment (for my rows) across my process row.
        active_rows = my_rows >= level
        if mycol == pc_l:
            chat_seg = r_local[active_rows, lcol_of[level]] / p
        else:
            chat_seg = None
        chat_seg = yield from row_comm.bcast(chat_seg, root=pc_l)

        # Local inhibition of the (active rows × my columns) tile.
        m_update = m_seg.copy()
        if mycol == pc_l:
            m_update[lcol_of[level]] = 0.0
        if active_rows.any():
            # repro: allow[PERF001] -- alternative-scheme reference; kept level-wise for clarity
            r_local[active_rows, :] -= np.outer(chat_seg, m_update)
            if mycol == pc_l:
                r_local[active_rows, lcol_of[level]] = chat_seg

        # h shard for my columns, replicated within the process column.
        hl_candidate = h_local[lcol_of[level]] / p if mycol == pc_l else None
        hl = yield from row_comm.bcast(hl_candidate, root=pc_l)
        h_local -= m_seg * hl
        if mycol == pc_l:
            h_local[lcol_of[level]] = hl

        if opts.charge_compute:
            yield from ctx.compute(flops=3.0 * n * (n - level) / nprocs)

    # Assemble x on the master from one process row's h shards.
    if myrow == 0:
        gathered = yield from row_comm.gather((my_cols, h_local), root=0)
    if comm.rank == master:
        d_full = d
        h_full = np.empty(n)
        for cols, shard in gathered:
            h_full[cols] = shard
        return h_full / d_full
    return None
