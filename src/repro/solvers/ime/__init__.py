"""The Inhibition Method (IMe) linear-system solver.

IMe (Ciampolini 1963; Artioli et al. 2001/2019/2020) is an iterative,
exact, non-inverting, pivot-free method.  It computes an *inhibition table*
``T(n) = [ diag(1/aᵢᵢ) | diag(1/aᵢᵢ)·Aᵀ ]`` and a vector ``h(n)`` of
*auxiliary quantities*, then reduces the table level by level until only
elementary sub-systems remain (§2.1 of the reproduced paper).

The fundamental formula is published in prior IMe papers not available to
this reproduction; :mod:`repro.solvers.ime.sequential` documents the exact
reconstruction used here (column-operation reduction of the right block
with ``h`` transforming as an extended row, giving ``xᵢ = hᵢ/aᵢᵢ``), which
preserves the published table layout, the level structure, the column-wise
parallel communication pattern, and the asymptotic complexity.

* ``sequential`` — single-process solver (validation reference).
* ``parallel`` — IMeP, the column-wise parallel scheme on simulated MPI.
* ``costmodel`` — the paper's published complexity formulas (flops,
  messages, volume, memory occupation) driving the analytic mode.
"""

from repro.solvers.ime.sequential import ime_solve, InhibitionTable
from repro.solvers.ime.parallel import ime_parallel_program, ImeOptions
from repro.solvers.ime.costmodel import ImeCostModel
from repro.solvers.ime.fault import (
    FaultTolerantTable,
    FaultRecoveryError,
    FtOverheadModel,
)
from repro.solvers.ime.ft_parallel import FtOptions, ime_ft_parallel_program
from repro.solvers.ime.schemes import (
    BlockwiseOptions,
    ime_blockwise_program,
    ime_rowwise_program,
)

__all__ = [
    "ime_solve",
    "InhibitionTable",
    "ime_parallel_program",
    "ImeOptions",
    "ImeCostModel",
    "FaultTolerantTable",
    "FaultRecoveryError",
    "FtOverheadModel",
    "FtOptions",
    "ime_ft_parallel_program",
    "BlockwiseOptions",
    "ime_blockwise_program",
    "ime_rowwise_program",
]
