"""Sequential Inhibition Method.

Reconstruction notes
--------------------
The paper (§2.1) specifies the INITIME initialization

    T(n) = [ diag(1/aᵢᵢ)  |  R ],   R[i, j] = a_{j,i} / a_{i,i},  R[i, i] = 1,

i.e. ``R = diag(1/aᵢᵢ)·Aᵀ``, plus a vector ``h(n)`` of auxiliary
quantities, and a reduction that processes one *level* per unknown,
shrinking the active table.  The fundamental formula itself lives in prior
IMe papers; we reconstruct an exact equivalent:

* reduce the right block to the identity by **column operations** — at
  level ``l`` the pivot is ``p = R[l, l]``; column ``l`` is normalized
  (``ĉ = R[:, l]/p``) and every other column ``j`` is *inhibited* in row
  ``l``: ``R[:, j] −= R[l, j]·ĉ``;
* ``h`` (initialized to ``b``) transforms as an extended row of the table:
  ``ĥ_l = h_l/p`` and ``h_j −= R[l, j]·ĥ_l``.

Column operations compose on the right, so the reduction computes
``R₀·K = I`` with ``h_fin = h₀·K`` (row sense), hence
``h_fin = D⁻¹A⁻¹b`` with ``D = diag(1/aᵢᵢ)`` and the solution is read off
as the elementary systems ``aᵢᵢ·xᵢ = h_fin,ᵢ`` — exact, non-inverting, no
pivoting.  The active window shrinks by one row per level (rows above the
current level are already inhibited), matching "reduces iteratively the
number of rows and columns".

The left block starts as ``diag(1/aᵢᵢ)`` and, if maintained, finishes as
``diag(1/aᵢᵢ)·A⁻ᵀ·diag(aᵢᵢ)`` — pure redundancy as far as the solution is
concerned, which is what IMe's fault-tolerance work exploits; it is
optional here (``keep_left=True``) and adds one n³-term of flops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.dense import SingularMatrixError


@dataclass
class InhibitionTable:
    """The IMe working state: right block R, optional left block L, and h."""

    right: np.ndarray          # R, n×n
    h: np.ndarray              # auxiliary quantities, length n
    diag: np.ndarray           # original diagonal aᵢᵢ (the elementary systems)
    left: np.ndarray | None    # L, n×n (fault-tolerance redundancy)
    level: int = 0             # levels completed

    @property
    def n(self) -> int:
        return self.right.shape[0]

    @classmethod
    def initime(cls, a: np.ndarray, b: np.ndarray,
                keep_left: bool = False) -> "InhibitionTable":
        """INITIME: build T(n) and h(n) from the input system (§2.1)."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got {a.shape}")
        if b.shape != (a.shape[0],):
            raise ValueError(f"rhs shape {b.shape} incompatible with {a.shape}")
        d = np.diag(a).copy()
        if np.any(d == 0.0):
            raise SingularMatrixError(
                "IMe requires nonzero diagonal entries (pivot-free method)"
            )
        # R[i, j] = a_{j,i} / a_{i,i}: transpose A then scale each row i by
        # 1/a_{i,i}.
        right = (a.T / d[:, None]).copy()
        left = np.diag(1.0 / d) if keep_left else None
        return cls(right=right, h=b.copy(), diag=d, left=left)

    def reduce_level(self) -> None:
        """Apply one level of the fundamental reduction."""
        l = self.level
        n = self.n
        if l >= n:
            raise RuntimeError("table already fully reduced")
        R = self.right
        p = R[l, l]
        if p == 0.0:
            raise SingularMatrixError(f"zero inhibition pivot at level {l}")
        # Normalized pivot column over the active rows l..n-1 (rows above
        # the level are already inhibited — the shrinking active window).
        chat = R[l:, l] / p
        m = R[l, :].copy()      # row-l entries: the per-column multipliers
        m[l] = 0.0
        R[l:, :] -= np.outer(chat, m)
        R[l:, l] = chat
        hl = self.h[l] / p
        self.h -= m * hl
        self.h[l] = hl
        if self.left is not None:
            # The left block undergoes the same column operations.
            L = self.left
            lhat = L[:, l] / p
            L -= np.outer(lhat, m)
            L[:, l] = lhat
        self.level += 1

    def solve(self) -> np.ndarray:
        """Run all remaining levels and read off the elementary systems."""
        while self.level < self.n:
            self.reduce_level()
        return self.h / self.diag


def ime_solve(a: np.ndarray, b: np.ndarray,
              keep_left: bool = False) -> np.ndarray:
    """Solve ``a @ x = b`` with the sequential Inhibition Method."""
    return InhibitionTable.initime(a, b, keep_left=keep_left).solve()


def ime_flops(n: int) -> float:
    """Arithmetic complexity reported by the paper: 3/2·n³ + O(n²) (§2).

    (The reconstruction's right-block-only reduction is somewhat cheaper;
    the published constant is used throughout the performance model so the
    reproduced figures reflect the paper's algorithm, not our shortcut.)
    """
    return 1.5 * n ** 3 + 4.0 * n ** 2


def ime_memory_floats(n: int) -> float:
    """Sequential memory occupation: 2n² + 3n floats (§2.1)."""
    return 2.0 * n ** 2 + 3.0 * n
