"""Fault-tolerant parallel IMe: surviving a rank failure mid-solve.

§2 motivates IMe with its "integrated low-cost multiple fault tolerance,
which is more efficient than the checkpoint/restart technique usually
applied in Gaussian Elimination" (Artioli/Loreti/Ciampolini, SRDS'19;
Loreti et al., SRDS'20).  This module reproduces that capability in the
simulated-MPI setting, end to end:

* the table's data columns are distributed cyclically over the first
  ``N−1`` ranks; the **last rank is the checksum rank**, carrying ``c``
  weighted-sum columns (seeded Gaussian weights, regenerable locally by
  every rank — recovery needs no weight communication);
* every level applies the standard fundamental-formula update to data
  *and* checksum columns, the checksums with the closed-form
  normalization correction (see :mod:`repro.solvers.ime.fault`), so the
  invariant ``C = Σ_j w_j · col_j`` holds exactly at every level;
* a **failure** of a data rank at a chosen level is injected as in real
  resilient MPI: the failed rank drops out, the survivors *shrink* the
  communicator (ULFM-style, via ``comm.split``) and run the recovery
  protocol — each survivor reduces its weighted column sums to the
  checksum rank, which solves the k×k weighted system and ships the
  reconstructed columns to the master, who **adopts** them (and their h
  entries, which its auxiliary-quantity replica already holds);
* the reduction then continues on the shrunk communicator with the
  remapped column ownership, finishing to the exact solution with **no
  restart and no checkpoint I/O**.

The failure level and victim are parameters (a deterministic simulation
has no spontaneous faults); ``fail_rank`` must be a slave data rank — the
master's h replica and the checksum rank are single points the SRDS
design protects by replication, out of scope here.

Blocked trailing updates
------------------------
Like plain IMeP, the per-level rank-1 table updates are deferred into
panels of ``block_levels`` levels and flushed as one BLAS-3 update
through the shared kernel (:mod:`repro.solvers.kernels`).  The checksum
rank needs *two* accumulators — the subtracted ``chat ⊗ m_cs`` update
and the added ``chat ⊗ w_l`` normalization correction — flushed in the
reference order.  Panels flush at the failure boundary before the
shrink, so every table row the recovery protocol's reductions feed into
recovered rows ``≥ fail_level`` is exact; rows *above* the failure
level may be stale mid-panel, but recovery reconstructs columns
row-independently and no row above the failure level is ever read again
(the same dead-row argument that lets plain IMeP skip updating row
``l`` at level ``l``).  ``block_levels=1`` reproduces the level-wise
arithmetic bitwise (the kernel contract), which the equivalence tests
pin against plain IMeP and the sequential solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.dense import SingularMatrixError
from repro.solvers.ime.costmodel import ImeCostModel
from repro.solvers.ime.fault import FaultRecoveryError
from repro.solvers.kernels import PanelAccumulator


@dataclass(frozen=True)
class FtOptions:
    """Fault-tolerant run parameters."""

    n_checksums: int = 2
    weight_seed: int = 7
    #: inject a failure of this data rank ... (None = fault-free run)
    fail_rank: int | None = None
    #: ... immediately before this level
    fail_level: int = 0
    charge_compute: bool = True
    #: defer the rank-1 table updates across this many levels and apply
    #: them as one BLAS-3 panel update (wall-clock only — the per-level
    #: message pattern, payload sizes, charged flops, and the recovery
    #: report are unchanged; ``block_levels=1`` is the bitwise
    #: level-wise reference)
    block_levels: int = 24

    def __post_init__(self):
        if self.n_checksums < 1:
            raise ValueError(
                f"need at least one checksum column: {self.n_checksums}"
            )
        if self.fail_rank is not None and self.fail_rank == 0:
            raise ValueError("the master (rank 0) cannot be the victim: its "
                             "h replica is required for recovery")


def _data_columns(n: int, n_data_ranks: int, rank: int) -> np.ndarray:
    return np.arange(rank, n, n_data_ranks)


def _weights(n: int, c: int, seed: int) -> np.ndarray:
    """The checksum weights — regenerated locally by every rank."""
    return np.random.default_rng(seed).normal(size=(c, n))


def ime_ft_parallel_program(ctx, comm, system=None,
                            options: FtOptions | None = None):
    """Rank program: fault-tolerant IMeP.

    World layout: ranks ``0 .. size−2`` hold data columns (rank 0 is the
    master), rank ``size−1`` is the checksum rank.  Returns the solution
    on the master, plus a small recovery report; other ranks return None
    (the failed rank returns the string ``"failed"``).
    """
    opts = options or FtOptions()
    rank, size = comm.rank, comm.size
    if size < 3:
        raise ValueError("fault-tolerant IMeP needs ≥ 3 ranks "
                         "(master + ≥1 slave + checksum rank)")
    n_data = size - 1
    cs_rank = size - 1
    master = 0
    if opts.fail_rank is not None and not (0 < opts.fail_rank < cs_rank):
        raise ValueError(
            f"fail_rank must be a slave data rank in (0, {cs_rank})"
        )

    # ----------------------------------------------------------- INITIME
    if rank == master:
        if system is None:
            raise ValueError("the master rank needs the input system")
        a = np.asarray(system.a, dtype=np.float64)
        b = np.asarray(system.b, dtype=np.float64)
        n = a.shape[0]
        d = np.diag(a).copy()
        if np.any(d == 0.0):
            raise SingularMatrixError("IMe requires nonzero diagonal entries")
        right = a.T / d[:, None]
        weights = _weights(n, opts.n_checksums, opts.weight_seed)
        shards = [
            (n, right[:, _data_columns(n, n_data, r)].copy(),
             b[_data_columns(n, n_data, r)].copy())
            for r in range(n_data)
        ]
        # The checksum rank receives C = R Wᵀ and the h checksums.
        shards.append((n, right @ weights.T, weights @ b))
        h_master = b.copy()
    else:
        shards = None
    n, local_cols, h_local = yield from comm.scatter(shards, root=master)
    weights = _weights(n, opts.n_checksums, opts.weight_seed)

    is_checksum_rank = rank == cs_rank
    if is_checksum_rank:
        owned: np.ndarray = np.array([], dtype=np.int64)
    else:
        owned = _data_columns(n, n_data, rank)

    #: global column -> owning world rank, kept identical on all ranks
    owner_of = np.arange(n, dtype=np.int64) % n_data
    alive = comm
    recovery_report = None

    kb = max(1, opts.block_levels)
    # The deferred trailing-update panels (shared blocked kernel).  The
    # checksum rank folds its two per-level rank-1 updates into a
    # subtract accumulator (chat ⊗ m_cs) and an add accumulator
    # (chat ⊗ w_l), flushed in the reference order.
    acc = PanelAccumulator(kb, n, local_cols.shape[1], zero_c_prefix=False)
    acc_w = (PanelAccumulator(kb, n, opts.n_checksums, sign=1.0,
                              zero_c_prefix=False)
             if is_checksum_rank else None)

    #: global column -> local column index on the owning rank (rebuilt
    #: only when the master adopts recovered columns)
    local_pos = np.full(n, -1, dtype=np.int64)
    local_pos[owned] = np.arange(len(owned))

    # Per-communicator lookup caches — the per-level hot path must not
    # rebuild the alive group or rescan ``owner_of``; both change only
    # at the (single) shrink.
    def _comm_caches():
        group = alive.group()
        alive_pos = {int(w): i for i, w in enumerate(group)}
        if rank == master:
            gather_cols = [
                None if w == cs_rank else np.nonzero(owner_of == w)[0]
                for w in group
            ]
            # Concatenated ownership map over the data ranks: the level
            # hot path assembles the gathered row in one numpy scatter
            # (the vectorized rank-class form of a per-rank assembly
            # loop; values bitwise equal — it is a pure permuted copy).
            gather_perm = np.concatenate(
                [c for c in gather_cols if c is not None]
            )
            gather_perm.flags.writeable = False
        else:
            gather_cols = gather_perm = None
        return alive_pos, gather_cols, gather_perm

    alive_pos, gather_cols, gather_perm = _comm_caches()

    # Published per-level compute cost (checksum rank pays 2c(n−l) extra
    # for its c weighted columns).
    if opts.charge_compute:
        level_flops = ImeCostModel.ft_level_flops_per_rank(
            n, n_data, opts.n_checksums if is_checksum_rank else 0
        )

    m_empty = np.empty(0)
    fail_at = opts.fail_level if opts.fail_rank is not None else None

    for level in range(n):
        # ------------------------------------------------ failure + shrink
        if fail_at is not None and level == fail_at:
            if rank == opts.fail_rank:
                # The victim drops out; survivors shrink the communicator.
                yield from alive.split(color=None)
                return "failed"
            # The recovery reductions below read whole table columns, so
            # survivors flush their pending panels first: rows ≥ level
            # become exact; staler rows only feed recovered rows the
            # solve never reads again (see the module docstring).
            acc.flush(local_cols, level)
            if acc_w is not None:
                acc_w.flush(local_cols, level)
            alive = yield from alive.split(color=0, key=alive.rank)

            # -------------------------------------------------- recovery
            lost = _data_columns(n, n_data, opts.fail_rank)
            k = len(lost)
            if k > opts.n_checksums:
                raise FaultRecoveryError(
                    f"{k} columns lost but only {opts.n_checksums} "
                    "checksum columns configured"
                )
            # Each survivor reduces Σ_{j owned} w_ij·col_j to the checksum
            # rank (now the last rank of the shrunk communicator).
            if is_checksum_rank:
                partial = np.zeros((opts.n_checksums, n))
            else:
                partial = np.einsum("cj,rj->cr", weights[:, owned],
                                    local_cols)
            cs_alive_rank = alive.size - 1
            total = yield from alive.reduce(partial, root=cs_alive_rank)
            if is_checksum_rank:
                rhs = local_cols.T - total          # (c, n): C − survivors
                v = weights[:, lost]                 # (c, k)
                if k == opts.n_checksums:
                    recovered = np.linalg.solve(v, rhs)      # (k, n)
                else:
                    recovered, *_ = np.linalg.lstsq(v, rhs, rcond=None)
                yield from alive.send(recovered.T.copy(), dest=0, tag=99)
            if rank == master:
                recovered_cols = yield from alive.recv(source=cs_alive_rank,
                                                       tag=99)
                # Adopt the lost columns (and their h entries, which the
                # master's replica already tracks).
                merged_cols = np.concatenate([owned, lost])
                order = np.argsort(merged_cols)
                owned = merged_cols[order]
                local_cols = np.concatenate(
                    [local_cols, recovered_cols], axis=1
                )[:, order]
                h_local = np.concatenate(
                    [h_local, h_master[lost]]
                )[order]
                local_pos = np.full(n, -1, dtype=np.int64)
                local_pos[owned] = np.arange(len(owned))
                acc = PanelAccumulator(kb, n, local_cols.shape[1],
                                       zero_c_prefix=False)
            owner_of[lost] = master
            alive_pos, gather_cols, gather_perm = _comm_caches()
            recovery_report = {"lost_columns": len(lost),
                               "recovered_at_level": level}
            fail_at = None

        # ----------------------------------------------- one level (as IMeP)
        # The gather→bcast(aux)→bcast(chat) chain runs as one pipeline so
        # the fast-p2p engine can fuse the whole level into a single
        # rendezvous; the compose path drives the same collectives one at
        # a time.
        m_local = (acc.row(local_cols, level) if not is_checksum_rank
                   else m_empty)
        owner_world = int(owner_of[level])
        owner_alive = alive_pos[owner_world]

        if alive.rank == 0:  # master (world rank 0 keeps alive-rank 0)
            def _aux(gathered, level=level):
                nonlocal h_master
                m_full = np.empty(n)
                m_full[gather_perm] = np.concatenate(
                    [shard for r, shard in enumerate(gathered)
                     if gather_cols[r] is not None]
                )
                p = m_full[level]
                if p == 0.0:
                    raise SingularMatrixError(
                        f"zero inhibition pivot at level {level}"
                    )
                hl = h_master[level] / p
                # Entry ``level`` picks up a bogus increment here, but
                # the next statement overwrites it — every other entry
                # sees exactly the masked update.
                h_master -= m_full * hl
                h_master[level] = hl
                return (hl, p)
        else:
            _aux = None

        if rank == owner_world:
            def _chat(aux, level=level):
                _hl, p = aux
                col = acc.col(local_cols, local_pos[level], level)
                col /= p
                return col
        else:
            _chat = None

        _gathered, (hl, p), chat = yield from alive.pipeline((
            ("gather", master, m_local),
            ("bcast", 0, _aux),
            ("bcast", owner_alive, _chat),
        ))

        if is_checksum_rank:
            m_cs = acc.row(local_cols, level)
            if acc_w.k:
                m_cs += acc_w.correction_row(level)
            acc.push(chat, level, m_cs)
            acc_w.push(chat, level, weights[:, level])
            h_local -= m_cs * hl
            h_local += weights[:, level] * hl
        else:
            acc.push(chat, level, m_local)
            if rank == owner_world:
                li = local_pos[level]
                acc.zero_m(li)
                local_cols[level:, li] = chat
            # Entry ``level`` of the owner picks up a bogus increment
            # here; the overwrite below restores the masked semantics.
            h_local -= m_local * hl
            if rank == owner_world:
                h_local[local_pos[level]] = hl
        if acc.k == kb or level == n - 1:
            acc.flush(local_cols, level + 1)
            if acc_w is not None:
                acc_w.flush(local_cols, level + 1)

        if opts.charge_compute:
            yield from ctx.compute(flops=float(level_flops[level]))

    if rank == master:
        return h_master / d, recovery_report
    return None
