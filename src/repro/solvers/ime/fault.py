"""Integrated fault tolerance for the Inhibition Method.

§2 of the reproduced paper motivates IMe by its "good integrated low-cost
multiple fault tolerance, which is more efficient than the
checkpoint/restart technique usually applied in Gaussian Elimination"
(Artioli, Loreti, Ciampolini — SRDS'19/'20).  This module implements the
mechanism at the table level:

* the table is augmented with ``c`` *checksum columns*, weighted sums of
  the data columns (``C[:, i] = Σ_j w_ij · R[:, j]``) with seeded Gaussian
  weights (any k ≤ c lost columns give a generically invertible k×k
  recovery system);
* the level reduction is applied to checksum columns like any other
  column, plus a closed-form correction (``C[l:, i] += w_il·ĉ`` and
  ``hc_i += w_il·ĥ_l``) that keeps the checksum invariant exact through
  the pivot-column normalization — so protection costs ``c`` extra column
  updates per level (a ``c/n`` relative overhead) and **no
  checkpoint I/O**;
* after losing up to ``c`` data columns (a failed rank's shard, in the
  parallel setting) the lost columns *and their h entries* are rebuilt by
  solving the k×k weighted system against the surviving columns, at any
  point of the reduction, and the solve continues to the exact solution.

The checkpoint/restart comparison (`ft_overhead_model`) reproduces the
qualitative claim: checksum maintenance is flops-proportional and tiny,
while checkpointing Gaussian Elimination pays periodic O(n²) state dumps
plus recomputation on failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.dense import SingularMatrixError


class FaultRecoveryError(RuntimeError):
    """Recovery is impossible (more losses than checksum columns)."""


class FaultTolerantTable:
    """Checksum-augmented inhibition table."""

    def __init__(self, a: np.ndarray, b: np.ndarray, n_checksums: int = 2,
                 seed: int = 0):
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got {a.shape}")
        if b.shape != (a.shape[0],):
            raise ValueError(f"rhs shape {b.shape} incompatible with {a.shape}")
        if n_checksums < 1:
            raise ValueError(f"need at least one checksum column: {n_checksums}")
        n = a.shape[0]
        d = np.diag(a).copy()
        if np.any(d == 0.0):
            raise SingularMatrixError("IMe requires nonzero diagonal entries")
        self.n = n
        self.diag = d
        self.level = 0
        self.right = (a.T / d[:, None]).copy()
        self.h = b.copy()
        rng = np.random.default_rng(seed)
        #: weights (c × n); Gaussian → any k ≤ c columns are generically
        #: recoverable
        self.weights = rng.normal(size=(n_checksums, n))
        self.checksums = self.right @ self.weights.T          # n × c
        self.h_checksums = self.weights @ self.h              # c
        self._lost: set[int] = set()

    @property
    def n_checksums(self) -> int:
        return self.weights.shape[0]

    # -------------------------------------------------------------- levels
    def reduce_level(self) -> None:
        """One fundamental-formula level, checksums kept exact."""
        if self._lost:
            raise FaultRecoveryError(
                f"columns {sorted(self._lost)} lost; recover() before reducing"
            )
        l = self.level
        if l >= self.n:
            raise RuntimeError("table already fully reduced")
        R = self.right
        C = self.checksums
        W = self.weights
        p = R[l, l]
        if p == 0.0:
            raise SingularMatrixError(f"zero inhibition pivot at level {l}")
        chat = R[l:, l] / p
        m = R[l, :].copy()
        m[l] = 0.0
        m_cs = C[l, :].copy()
        R[l:, :] -= np.outer(chat, m)
        R[l:, l] = chat
        # Checksum columns follow the same rule plus the normalization
        # correction w_il·ĉ (see the module docstring derivation).
        C[l:, :] -= np.outer(chat, m_cs)
        C[l:, :] += np.outer(chat, W[:, l])
        hl = self.h[l] / p
        self.h -= m * hl
        self.h[l] = hl
        self.h_checksums -= m_cs * hl
        self.h_checksums += W[:, l] * hl
        self.level += 1

    def solve(self) -> np.ndarray:
        while self.level < self.n:
            self.reduce_level()
        return self.h / self.diag

    # --------------------------------------------------------------- faults
    def checksum_residual(self) -> float:
        """Largest violation of the checksum invariants (≈ 0 when healthy)."""
        col_res = np.max(np.abs(self.right @ self.weights.T - self.checksums))
        h_res = np.max(np.abs(self.weights @ self.h - self.h_checksums))
        return float(max(col_res, h_res))

    def corrupt(self, columns: list[int]) -> None:
        """Simulate losing data columns (a failed rank's shard): the column
        data and the matching h entries are destroyed."""
        cols = sorted(set(int(c) for c in columns))
        for c in cols:
            if not (0 <= c < self.n):
                raise ValueError(f"column {c} out of range [0, {self.n})")
        self._lost.update(cols)
        idx = np.asarray(cols, dtype=np.int64)
        self.right[:, idx] = np.nan
        self.h[idx] = np.nan

    def recover(self) -> list[int]:
        """Rebuild all lost columns (and h entries) from the checksums.

        Returns the recovered column indices.  Raises
        :class:`FaultRecoveryError` if more columns were lost than there
        are checksum columns.
        """
        if not self._lost:
            return []
        lost = sorted(self._lost)
        k = len(lost)
        c = self.n_checksums
        if k > c:
            raise FaultRecoveryError(
                f"{k} columns lost but only {c} checksum columns available"
            )
        lost_idx = np.asarray(lost, dtype=np.int64)
        survive = np.setdiff1d(np.arange(self.n), lost_idx)
        # Σ_{j lost} w_ij col_j = C_i − Σ_{j survive} w_ij col_j, row-wise.
        rhs_cols = (self.checksums.T
                    - self.weights[:, survive] @ self.right[:, survive].T)
        rhs_h = self.h_checksums - self.weights[:, survive] @ self.h[survive]
        v = self.weights[:, lost_idx]                 # c × k
        if k == c:
            solve = np.linalg.solve
            recovered = solve(v, rhs_cols)            # k × n (rows)
            recovered_h = solve(v, rhs_h)
        else:
            recovered, *_ = np.linalg.lstsq(v, rhs_cols, rcond=None)
            recovered_h, *_ = np.linalg.lstsq(v, rhs_h, rcond=None)
        self.right[:, lost_idx] = recovered.T
        self.h[lost_idx] = recovered_h
        self._lost.clear()
        return lost


@dataclass(frozen=True)
class FtOverheadModel:
    """Protection-cost comparison: IMe checksums vs checkpoint/restart.

    Reproduces §2's claim that IMe's integrated fault tolerance is cheaper
    than the checkpoint/restart scheme Gaussian Elimination needs.
    """

    n: int
    n_checksums: int = 2
    checkpoint_interval_levels: int = 500
    #: effective bandwidth of checkpoint storage (bytes/s)
    checkpoint_bandwidth: float = 2.0e9
    #: effective per-core compute rate used for the flop terms
    flops_per_second: float = 12.0e9

    def ime_checksum_overhead_seconds(self) -> float:
        """Extra flops of carrying c checksum columns through all levels."""
        # Per level: update c checksum columns over the active rows (~n−l)
        # at 2 flops each, plus the O(c) corrections.
        extra_flops = 2.0 * self.n_checksums * (self.n ** 2) / 2.0
        return extra_flops / self.flops_per_second

    def checkpoint_overhead_seconds(self) -> float:
        """Periodic O(n²) state dumps during an n-level factorization."""
        n_checkpoints = max(1, self.n // self.checkpoint_interval_levels)
        bytes_per_checkpoint = 8.0 * self.n ** 2
        return n_checkpoints * bytes_per_checkpoint / self.checkpoint_bandwidth

    def ime_recovery_seconds(self, k_lost: int) -> float:
        """Rebuild k columns: a k×k solve against n right-hand sides."""
        flops = 2.0 * k_lost ** 2 * self.n + (2.0 / 3.0) * k_lost ** 3
        return flops / self.flops_per_second

    def checkpoint_recovery_seconds(self) -> float:
        """Reload the last checkpoint and redo half an interval of levels."""
        reload = 8.0 * self.n ** 2 / self.checkpoint_bandwidth
        # Lost work: on average half the interval's levels, ~2n(n−l) flops
        # each around mid-factorization (n−l ≈ n/2).
        redo_flops = (self.checkpoint_interval_levels / 2.0) * self.n ** 2
        return reload + redo_flops / self.flops_per_second
