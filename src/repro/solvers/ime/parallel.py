"""IMeP: the column-wise parallel Inhibition Method (§2.1).

The inhibition table is distributed **column-wise** (the scheme the paper
selects for its fault-tolerance fit), cyclically over the N ranks for load
balance.  Rank 0 is the *master*, the others are *slaves*.  Every level
``l`` performs exactly the message pattern §2.1 describes:

1. every rank sends the row-``l`` entries of its columns to the master —
   "only the n elements of the last row which result modified … must be
   sent to the master";
2. the master advances the auxiliary quantities ``h`` and **broadcasts**
   the level's auxiliary pair ``(ĥ_l, p)`` — "at every level it is also
   necessary to broadcast from the master to the slaves h";
3. the rank owning column ``l`` (table column ``n+l``) normalizes it and
   **broadcasts** it to all ranks — "the node in charge of the computation
   of the last column t∗,n+l should broadcast it to all the other nodes";
4. every rank inhibits row ``l`` from its own columns (a local, vectorized
   rank-1 update over the shrinking active window) and advances its local
   ``h`` shard with the broadcast ``ĥ_l``.

At the end the master reads the solution off its replica of ``h``
(``xᵢ = hᵢ/aᵢᵢ``); the distributed shards reproduce the same values (a
consistency property the tests check).

Compute time/energy is charged per level through the rank context, using
the *published* IMe complexity (3/2·n³ total, decaying linearly across
levels) so the performance model reflects the paper's algorithm.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.memo import register_cache
from repro.solvers.dense import SingularMatrixError
from repro.solvers.ime.costmodel import ImeCostModel
from repro.solvers.kernels import PanelAccumulator


@dataclass(frozen=True)
class ImeOptions:
    """Tunables of the parallel run."""

    #: charge compute time/energy through the rank context
    charge_compute: bool = True
    #: also return the rank-local h shard (testing/validation hook)
    return_shards: bool = False
    #: broadcast the final solution to all ranks instead of master-only
    broadcast_solution: bool = False
    #: defer the rank-1 table updates across this many levels and apply
    #: them as one BLAS-3 panel update (wall-clock only — the per-level
    #: message pattern, payload sizes, and charged flops are unchanged;
    #: float summation order differs from ``block_levels=1``, the
    #: level-at-a-time reference schedule)
    block_levels: int = 24


@register_cache
@functools.lru_cache(maxsize=None)
def _owned_columns(n: int, size: int, rank: int) -> np.ndarray:
    """Cyclic column distribution: rank owns columns rank, rank+N, …

    Cached (called once per level per rank); the array is read-only.
    """
    cols = np.arange(rank, n, size)
    cols.flags.writeable = False
    return cols


@register_cache
@functools.lru_cache(maxsize=None)
def _gather_permutation(n: int, size: int) -> np.ndarray:
    """Concatenated ownership map: position of every gathered element.

    ``m_full[_gather_permutation(n, size)] = concat(shards)`` assembles a
    rank-ordered gather result in one numpy scatter — the vectorized
    rank-class form of the per-rank assembly loop (values bitwise equal:
    it is a pure copy).  Read-only and memoized like the per-rank maps.
    """
    perm = np.concatenate([_owned_columns(n, size, r) for r in range(size)])
    perm.flags.writeable = False
    return perm


def ime_parallel_program(ctx, comm, system=None, options: ImeOptions | None = None):
    """Rank program solving ``system`` with IMeP.  Drive under a Job.

    ``system`` (a :class:`~repro.workloads.generator.LinearSystem`) needs to
    be supplied on the master only; slaves receive their table shards over
    the simulated network during INITIME.
    """
    opts = options or ImeOptions()
    rank = comm.rank
    size = comm.size
    master = 0

    # ----------------------------------------------------------- INITIME
    with ctx.span("ime:initime"):
        if rank == master:
            if system is None:
                raise ValueError("the master rank needs the input system")
            a = np.asarray(system.a, dtype=np.float64)
            b = np.asarray(system.b, dtype=np.float64)
            n = a.shape[0]
            d = np.diag(a).copy()
            if np.any(d == 0.0):
                raise SingularMatrixError(
                    "IMe requires nonzero diagonal entries"
                )
            right = a.T / d[:, None]      # R[i, j] = a_{j,i} / a_{i,i}
            shards = [
                (n, right[:, _owned_columns(n, size, r)].copy(),
                 b[_owned_columns(n, size, r)].copy())
                for r in range(size)
            ]
            h_master = b.copy()
        else:
            shards = None

        n, r_local, h_local = yield from comm.scatter(shards, root=master)
        mine = _owned_columns(n, size, rank)
        n_local = len(mine)
        # Map global column -> local index for the columns this rank owns.
        local_of = {int(g): i for i, g in enumerate(mine)}

        if rank == master and opts.charge_compute:
            # INITIME scaling of the table: n² divisions.
            yield from ctx.compute(flops=float(n) * n, dram_bytes=8.0 * n * n)

    # ------------------------------------------------------------ levels
    #
    # The table updates are applied in *panels* of ``block_levels``
    # levels: within a panel the rank-1 updates are deferred (only the
    # row-``l`` values actually communicated are corrected on the fly),
    # then flushed as one trailing BLAS-3 update — the shared
    # blocked-panel kernel (:mod:`repro.solvers.kernels`).  A column
    # pivoted inside the panel is written back to the table immediately
    # (its chat) and its pending multipliers are zeroed (``zero_m``) —
    # the pre-pivot updates no longer apply to it — so the kernel's
    # correction formulas stay exact for pivoted columns too.  The
    # per-level message pattern — gather(row) → bcast(aux) →
    # bcast(column) — runs through ``comm.pipeline`` so the fast-p2p
    # engine can fuse each level's chain into a single rendezvous.
    kb = max(1, opts.block_levels)
    acc = PanelAccumulator(kb, n, n_local, zero_c_prefix=False)
    level_flops = ImeCostModel.level_flops_per_rank(n, size)

    with ctx.span("ime:levels", levels=n):
        for level in range(n):
            # (1) row-l entries of the owned columns go to the master;
            # (2) master advances its h replica, broadcasts (ĥ_l, p);
            # (3) the owner of table column n+l broadcasts its normalized
            #     active part to everyone.
            m_local = acc.row(r_local, level)
            owner = level % size

            if rank == master:
                def _aux(gathered, level=level):
                    nonlocal h_master
                    # One numpy scatter per level instead of a Python loop
                    # over ranks (same values: a pure permuted copy).
                    m_full = np.empty(n)
                    m_full[_gather_permutation(n, size)] = \
                        np.concatenate(gathered)
                    p = m_full[level]
                    if p == 0.0:
                        raise SingularMatrixError(
                            f"zero inhibition pivot at level {level}"
                        )
                    hl = h_master[level] / p
                    # Entry ``level`` picks up a bogus increment here, but
                    # the next statement overwrites it — every other entry
                    # sees exactly the masked update.
                    h_master -= m_full * hl
                    h_master[level] = hl
                    return (hl, p)
            else:
                _aux = None

            if rank == owner:
                def _chat(aux, level=level):
                    _hl, p = aux
                    col = acc.col(r_local, local_of[level], level)
                    col /= p
                    return col
            else:
                _chat = None

            _gathered, (hl, p), chat = yield from comm.pipeline((
                ("gather", master, m_local),
                ("bcast", master, _aux),
                ("bcast", owner, _chat),
            ))

            # (4) local inhibition of row `level` over the active window,
            # deferred into the panel.
            acc.push(chat, level, m_local)
            if rank == owner:
                lcol = local_of[level]
                acc.zero_m(lcol)
                r_local[level:, lcol] = chat
            h_local -= m_local * hl
            if rank == owner:
                h_local[local_of[level]] = hl
            if acc.k == kb or level == n - 1:
                acc.flush(r_local, level + 1)

            if opts.charge_compute:
                yield from ctx.compute(flops=float(level_flops[level]))

    # ------------------------------------------------------------- epilogue
    with ctx.span("ime:solution"):
        if rank == master:
            x = h_master / d
        else:
            x = None
        if opts.broadcast_solution:
            x = yield from comm.bcast(x, root=master)
    if opts.return_shards:
        return x, (mine, h_local)
    return x
