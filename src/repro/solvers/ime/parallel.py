"""IMeP: the column-wise parallel Inhibition Method (§2.1).

The inhibition table is distributed **column-wise** (the scheme the paper
selects for its fault-tolerance fit), cyclically over the N ranks for load
balance.  Rank 0 is the *master*, the others are *slaves*.  Every level
``l`` performs exactly the message pattern §2.1 describes:

1. every rank sends the row-``l`` entries of its columns to the master —
   "only the n elements of the last row which result modified … must be
   sent to the master";
2. the master advances the auxiliary quantities ``h`` and **broadcasts**
   the level's auxiliary pair ``(ĥ_l, p)`` — "at every level it is also
   necessary to broadcast from the master to the slaves h";
3. the rank owning column ``l`` (table column ``n+l``) normalizes it and
   **broadcasts** it to all ranks — "the node in charge of the computation
   of the last column t∗,n+l should broadcast it to all the other nodes";
4. every rank inhibits row ``l`` from its own columns (a local, vectorized
   rank-1 update over the shrinking active window) and advances its local
   ``h`` shard with the broadcast ``ĥ_l``.

At the end the master reads the solution off its replica of ``h``
(``xᵢ = hᵢ/aᵢᵢ``); the distributed shards reproduce the same values (a
consistency property the tests check).

Compute time/energy is charged per level through the rank context, using
the *published* IMe complexity (3/2·n³ total, decaying linearly across
levels) so the performance model reflects the paper's algorithm.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

try:  # in-place panel flush (optional; numpy fallback below)
    from scipy.linalg.blas import dgemm as _dgemm
except ImportError:  # pragma: no cover - scipy is in the baked toolchain
    _dgemm = None

from repro.solvers.dense import SingularMatrixError


@dataclass(frozen=True)
class ImeOptions:
    """Tunables of the parallel run."""

    #: charge compute time/energy through the rank context
    charge_compute: bool = True
    #: also return the rank-local h shard (testing/validation hook)
    return_shards: bool = False
    #: broadcast the final solution to all ranks instead of master-only
    broadcast_solution: bool = False
    #: defer the rank-1 table updates across this many levels and apply
    #: them as one BLAS-3 panel update (wall-clock only — the per-level
    #: message pattern, payload sizes, and charged flops are unchanged;
    #: float summation order differs from ``block_levels=1``, the
    #: level-at-a-time reference schedule)
    block_levels: int = 24


@functools.lru_cache(maxsize=None)
def _owned_columns(n: int, size: int, rank: int) -> np.ndarray:
    """Cyclic column distribution: rank owns columns rank, rank+N, …

    Cached (called once per level per rank); the array is read-only.
    """
    cols = np.arange(rank, n, size)
    cols.flags.writeable = False
    return cols


def _level_flops_per_rank(n: int, level: int, size: int) -> float:
    """Published per-level cost: Σ_l 3n(n−l) = 3/2·n³, split over N ranks."""
    return 3.0 * n * (n - level) / size


def ime_parallel_program(ctx, comm, system=None, options: ImeOptions | None = None):
    """Rank program solving ``system`` with IMeP.  Drive under a Job.

    ``system`` (a :class:`~repro.workloads.generator.LinearSystem`) needs to
    be supplied on the master only; slaves receive their table shards over
    the simulated network during INITIME.
    """
    opts = options or ImeOptions()
    rank = comm.rank
    size = comm.size
    master = 0

    # ----------------------------------------------------------- INITIME
    with ctx.span("ime:initime"):
        if rank == master:
            if system is None:
                raise ValueError("the master rank needs the input system")
            a = np.asarray(system.a, dtype=np.float64)
            b = np.asarray(system.b, dtype=np.float64)
            n = a.shape[0]
            d = np.diag(a).copy()
            if np.any(d == 0.0):
                raise SingularMatrixError(
                    "IMe requires nonzero diagonal entries"
                )
            right = a.T / d[:, None]      # R[i, j] = a_{j,i} / a_{i,i}
            shards = [
                (n, right[:, _owned_columns(n, size, r)].copy(),
                 b[_owned_columns(n, size, r)].copy())
                for r in range(size)
            ]
            h_master = b.copy()
        else:
            shards = None

        n, r_local, h_local = yield from comm.scatter(shards, root=master)
        mine = _owned_columns(n, size, rank)
        n_local = len(mine)
        # Map global column -> local index for the columns this rank owns.
        local_of = {int(g): i for i, g in enumerate(mine)}

        if rank == master and opts.charge_compute:
            # INITIME scaling of the table: n² divisions.
            yield from ctx.compute(flops=float(n) * n, dram_bytes=8.0 * n * n)

    # ------------------------------------------------------------ levels
    #
    # The table updates are applied in *panels* of ``block_levels``
    # levels: within a panel the rank-1 updates are deferred (only the
    # row-``l`` values actually communicated are corrected on the fly),
    # then flushed as one trailing BLAS-3 update.  The per-level message
    # pattern — gather(row) → bcast(aux) → bcast(column) — runs through
    # ``comm.pipeline`` so the fast-p2p engine can fuse each level's
    # chain into a single rendezvous.
    kb = max(1, opts.block_levels)
    blk_levels: list[int] = []     # panel levels, oldest first
    #: row j = that panel level's chat, stored at its global row offset
    #: (chat_j covers columns blk_levels[j]:n), so row ``l`` reads out
    #: every pending correction at once; (kb, n) layout makes the
    #: per-level chat write contiguous and feeds the flush gemm its
    #: transposed operand directly
    blk_c = np.empty((kb, n))
    blk_m = np.empty((kb, n_local))   # row j = that level's m_update
    # A column pivoted inside the panel is written back to the table
    # immediately (its chat) and its earlier panel rows in ``blk_m`` are
    # zeroed — the pre-pivot updates no longer apply to it — so the one
    # correction formula below is exact for pivoted columns too.

    def _corrected_row(level: int) -> np.ndarray:
        """Row ``level`` of the true table over the owned columns."""
        k = len(blk_levels)
        if not k:
            return r_local[level, :].copy()
        return r_local[level, :] - blk_c[:k, level] @ blk_m[:k]

    def _flush_panel(l_end: int) -> None:
        kk = len(blk_levels)
        if kk and l_end < n:
            if _dgemm is not None:
                # In-place trailing update via the transposed problem:
                # r_local[l_end:].T is an F-contiguous view, so BLAS can
                # subtract the product without the temporary the numpy
                # expression below materializes.
                _dgemm(alpha=-1.0, a=blk_m[:kk].T, b=blk_c[:kk, l_end:],
                       beta=1.0, c=r_local[l_end:, :].T, overwrite_c=1)
            else:
                r_local[l_end:, :] -= blk_c[:kk, l_end:].T @ blk_m[:kk]
        blk_levels.clear()

    with ctx.span("ime:levels", levels=n):
        for level in range(n):
            # (1) row-l entries of the owned columns go to the master;
            # (2) master advances its h replica, broadcasts (ĥ_l, p);
            # (3) the owner of table column n+l broadcasts its normalized
            #     active part to everyone.
            m_local = _corrected_row(level)
            owner = level % size

            if rank == master:
                def _aux(gathered, level=level):
                    nonlocal h_master
                    m_full = np.empty(n)
                    for r, shard in enumerate(gathered):
                        m_full[_owned_columns(n, size, r)] = shard
                    p = m_full[level]
                    if p == 0.0:
                        raise SingularMatrixError(
                            f"zero inhibition pivot at level {level}"
                        )
                    hl = h_master[level] / p
                    # Entry ``level`` picks up a bogus increment here, but
                    # the next statement overwrites it — every other entry
                    # sees exactly the masked update.
                    h_master -= m_full * hl
                    h_master[level] = hl
                    return (hl, p)
            else:
                _aux = None

            if rank == owner:
                def _chat(aux, level=level):
                    _hl, p = aux
                    lcol = local_of[level]
                    k = len(blk_levels)
                    if k:
                        col = r_local[level:, lcol] \
                            - blk_m[:k, lcol] @ blk_c[:k, level:]
                    else:
                        col = r_local[level:, lcol].copy()
                    col /= p
                    return col
            else:
                _chat = None

            _gathered, (hl, p), chat = yield from comm.pipeline((
                ("gather", master, m_local),
                ("bcast", master, _aux),
                ("bcast", owner, _chat),
            ))

            # (4) local inhibition of row `level` over the active window,
            # deferred into the panel.
            k = len(blk_levels)
            blk_m[k] = m_local
            if rank == owner:
                lcol = local_of[level]
                blk_m[:k + 1, lcol] = 0.0
                r_local[level:, lcol] = chat
            blk_levels.append(level)
            blk_c[k, level:] = chat
            h_local -= m_local * hl
            if rank == owner:
                h_local[local_of[level]] = hl
            if len(blk_levels) == kb or level == n - 1:
                _flush_panel(level + 1)

            if opts.charge_compute:
                flops = _level_flops_per_rank(n, level, size)
                yield from ctx.compute(flops=flops)

    # ------------------------------------------------------------- epilogue
    with ctx.span("ime:solution"):
        if rank == master:
            x = h_master / d
        else:
            x = None
        if opts.broadcast_solution:
            x = yield from comm.bcast(x, root=master)
    if opts.return_shards:
        return x, (mine, h_local)
    return x
