"""IMeP: the column-wise parallel Inhibition Method (§2.1).

The inhibition table is distributed **column-wise** (the scheme the paper
selects for its fault-tolerance fit), cyclically over the N ranks for load
balance.  Rank 0 is the *master*, the others are *slaves*.  Every level
``l`` performs exactly the message pattern §2.1 describes:

1. every rank sends the row-``l`` entries of its columns to the master —
   "only the n elements of the last row which result modified … must be
   sent to the master";
2. the master advances the auxiliary quantities ``h`` and **broadcasts**
   the level's auxiliary pair ``(ĥ_l, p)`` — "at every level it is also
   necessary to broadcast from the master to the slaves h";
3. the rank owning column ``l`` (table column ``n+l``) normalizes it and
   **broadcasts** it to all ranks — "the node in charge of the computation
   of the last column t∗,n+l should broadcast it to all the other nodes";
4. every rank inhibits row ``l`` from its own columns (a local, vectorized
   rank-1 update over the shrinking active window) and advances its local
   ``h`` shard with the broadcast ``ĥ_l``.

At the end the master reads the solution off its replica of ``h``
(``xᵢ = hᵢ/aᵢᵢ``); the distributed shards reproduce the same values (a
consistency property the tests check).

Compute time/energy is charged per level through the rank context, using
the *published* IMe complexity (3/2·n³ total, decaying linearly across
levels) so the performance model reflects the paper's algorithm.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.solvers.dense import SingularMatrixError


@dataclass(frozen=True)
class ImeOptions:
    """Tunables of the parallel run."""

    #: charge compute time/energy through the rank context
    charge_compute: bool = True
    #: also return the rank-local h shard (testing/validation hook)
    return_shards: bool = False
    #: broadcast the final solution to all ranks instead of master-only
    broadcast_solution: bool = False


@functools.lru_cache(maxsize=None)
def _owned_columns(n: int, size: int, rank: int) -> np.ndarray:
    """Cyclic column distribution: rank owns columns rank, rank+N, …

    Cached (called once per level per rank); the array is read-only.
    """
    cols = np.arange(rank, n, size)
    cols.flags.writeable = False
    return cols


def _level_flops_per_rank(n: int, level: int, size: int) -> float:
    """Published per-level cost: Σ_l 3n(n−l) = 3/2·n³, split over N ranks."""
    return 3.0 * n * (n - level) / size


def ime_parallel_program(ctx, comm, system=None, options: ImeOptions | None = None):
    """Rank program solving ``system`` with IMeP.  Drive under a Job.

    ``system`` (a :class:`~repro.workloads.generator.LinearSystem`) needs to
    be supplied on the master only; slaves receive their table shards over
    the simulated network during INITIME.
    """
    opts = options or ImeOptions()
    rank = comm.rank
    size = comm.size
    master = 0

    # ----------------------------------------------------------- INITIME
    with ctx.span("ime:initime"):
        if rank == master:
            if system is None:
                raise ValueError("the master rank needs the input system")
            a = np.asarray(system.a, dtype=np.float64)
            b = np.asarray(system.b, dtype=np.float64)
            n = a.shape[0]
            d = np.diag(a).copy()
            if np.any(d == 0.0):
                raise SingularMatrixError(
                    "IMe requires nonzero diagonal entries"
                )
            right = a.T / d[:, None]      # R[i, j] = a_{j,i} / a_{i,i}
            shards = [
                (n, right[:, _owned_columns(n, size, r)].copy(),
                 b[_owned_columns(n, size, r)].copy())
                for r in range(size)
            ]
            h_master = b.copy()
        else:
            shards = None

        n, r_local, h_local = yield from comm.scatter(shards, root=master)
        mine = _owned_columns(n, size, rank)
        n_local = len(mine)
        # Map global column -> local index for the columns this rank owns.
        local_of = {int(g): i for i, g in enumerate(mine)}

        if rank == master and opts.charge_compute:
            # INITIME scaling of the table: n² divisions.
            yield from ctx.compute(flops=float(n) * n, dram_bytes=8.0 * n * n)

    # ------------------------------------------------------------ levels
    with ctx.span("ime:levels", levels=n):
        for level in range(n):
            # (1) row-l entries of the owned columns go to the master.
            m_local = r_local[level, :].copy()
            gathered = yield from comm.gather(m_local, root=master)

            # (2) master advances its h replica and broadcasts (ĥ_l, p).
            if rank == master:
                m_full = np.empty(n)
                for r, shard in enumerate(gathered):
                    m_full[_owned_columns(n, size, r)] = shard
                p = m_full[level]
                if p == 0.0:
                    raise SingularMatrixError(
                        f"zero inhibition pivot at level {level}"
                    )
                hl = h_master[level] / p
                m_masked = m_full.copy()
                m_masked[level] = 0.0
                h_master -= m_masked * hl
                h_master[level] = hl
                aux = (hl, p)
            else:
                aux = None
            hl, p = yield from comm.bcast(aux, root=master)

            # (3) the owner of table column n+l broadcasts its normalized
            #     active part to everyone.
            owner = level % size
            if rank == owner:
                lcol = local_of[level]
                chat = r_local[level:, lcol] / p
            else:
                chat = None
            chat = yield from comm.bcast(chat, root=owner)

            # (4) local inhibition of row `level` over the active window.
            m_update = m_local.copy()
            if rank == owner:
                m_update[local_of[level]] = 0.0
            r_local[level:, :] -= np.outer(chat, m_update)
            if rank == owner:
                r_local[level:, local_of[level]] = chat
            h_local -= m_local * hl
            if rank == owner:
                h_local[local_of[level]] = hl

            if opts.charge_compute:
                flops = _level_flops_per_rank(n, level, size)
                yield from ctx.compute(flops=flops)

    # ------------------------------------------------------------- epilogue
    with ctx.span("ime:solution"):
        if rank == master:
            x = h_master / d
        else:
            x = None
        if opts.broadcast_solution:
            x = yield from comm.bcast(x, root=master)
    if opts.return_shards:
        return x, (mine, h_local)
    return x
