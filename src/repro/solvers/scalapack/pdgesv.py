"""Distributed LU solve over the block-cyclic layout (``pdgesv``).

A right-looking LU factorization with partial pivoting followed by
distributed triangular solves, mirroring ScaLAPACK's
``pdgetrf`` + ``pdgetrs`` at the algorithm level:

* the matrix is 2D block-cyclic over a Pr×Pc BLACS grid with block size
  ``nb``;
* each panel is factored by one process *column* — per matrix column a
  pivot search (max-loc reduction down the process column), a global row
  swap (exchanged between the two owning process rows, across **all**
  process columns), then scale + rank-1 update of the panel remainder;
* the factored panel (L21) is broadcast along process rows, the U12 block
  row is computed by a triangular solve and broadcast down process
  columns, and every process applies the trailing GEMM update locally —
  the "block-partitioned algorithm promoting data reuse" of §2.2;
* triangular solves proceed block by block with row-communicator partial
  reductions and grid-wide broadcasts of each solved block.

The per-column pivot traffic (a log₂Pr reduction plus row swaps on the
critical path, n times) is exactly what makes ScaLAPACK latency-bound in
the paper's most distributed deployments — where IMe overtakes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.solvers.dense import SingularMatrixError
from repro.solvers.kernels import PanelAccumulator
from repro.solvers.scalapack.blockcyclic import (
    global_indices,
    local_index,
    owner_of,
)
from repro.solvers.scalapack.grid import ProcessGrid


@dataclass(frozen=True)
class ScalapackOptions:
    """Tunables of the distributed solve."""

    nb: int = 8
    grid: ProcessGrid | None = None
    charge_compute: bool = True
    pivoting: bool = True
    #: factor each panel left-looking through the shared blocked kernel
    #: (:mod:`repro.solvers.kernels`): the per-column rank-1 interior
    #: updates are deferred and each column is materialized by one gemv
    #: right before its pivot search.  ``False`` keeps the per-column
    #: ``np.outer`` right-looking reference.  Pivot choices, the message
    #: pattern, and the charged flops are identical either way.
    blocked_panel: bool = True

    def resolve_grid(self, nprocs: int) -> ProcessGrid:
        grid = self.grid or ProcessGrid.squarest(nprocs)
        if grid.size != nprocs:
            raise ValueError(
                f"grid {grid} needs {grid.size} processes, world has {nprocs}"
            )
        return grid


def _maxloc(a: tuple, b: tuple) -> tuple:
    """(|value|, global_row) max-reduction; ties pick the smallest row."""
    return a if (a[0], -a[1]) >= (b[0], -b[1]) else b


def pdgesv_program(ctx, comm, system=None,
                   options: ScalapackOptions | None = None):
    """Rank program: solve ``system`` (supplied on world rank 0).

    Returns the full solution vector on every rank (it is replicated by
    the final block broadcasts of the substitution phase).
    """
    opts = options or ScalapackOptions()
    nprocs = comm.size
    grid = opts.resolve_grid(nprocs)
    nb = opts.nb
    myrow, mycol = grid.coords(comm.rank)
    row_comm = yield from comm.split(color=myrow, key=mycol)
    col_comm = yield from comm.split(color=mycol, key=myrow)

    # ------------------------------------------------------- distribution
    with ctx.span("scalapack:distribute", nb=nb):
        if comm.rank == 0:
            if system is None:
                raise ValueError("world rank 0 needs the input system")
            a = np.asarray(system.a, dtype=np.float64)
            n = a.shape[0]
            shards = []
            for r in range(nprocs):
                pr, pc = grid.coords(r)
                gr = global_indices(n, nb, pr, grid.nprow)
                gc = global_indices(n, nb, pc, grid.npcol)
                shards.append((n, a[np.ix_(gr, gc)].copy()))
            b_full = np.asarray(system.b, dtype=np.float64).copy()
        else:
            shards, b_full = None, None
        n, a_local = yield from comm.scatter(shards, root=0)
        b = yield from comm.bcast(b_full, root=0)

    grows = global_indices(n, nb, myrow, grid.nprow)
    gcols = global_indices(n, nb, mycol, grid.npcol)
    nlrow, nlcol = len(grows), len(gcols)

    ipiv: list[int] = []
    acc = PanelAccumulator(nb, nlrow, nb) if opts.blocked_panel else None
    # Reusable trailing-update product buffer: the per-panel temporaries
    # are multi-MB at paper scale, and reusing one allocation keeps the
    # pages warm (the values are identical — same matmul either way).
    gemm_work = np.empty(nlrow * nlcol)

    # ------------------------------------------------------ factorization
    with ctx.span("scalapack:factorize", nb=nb):
        # A block [k0, k0+nb) never straddles a distribution block, so its
        # local rows/columns on the owning process are one contiguous
        # slice starting at ``local_index(k0, ...)``; with sorted
        # grows/gcols, the "at or past k0" sets are suffix slices found by
        # ``searchsorted``.  Plain slices replace dict lookups and
        # ``np.ix_`` scatter/gather on every hot path below.
        #
        # With ``opts.blocked_panel`` the panel factorization runs
        # *left-looking* over the shared blocked kernel: each column's
        # scaled L segment and U row are pushed into the accumulator
        # instead of applying a rank-1 ``np.outer`` to the whole panel
        # remainder, a column is materialized by one gemv right before
        # its pivot search, and swapped pivot rows are finalized (and
        # dropped from the panel) before the exchange so the rows on the
        # wire are the true values.  Nothing is left pending at the end
        # of a panel — every interior column was materialized on read.
        for k0 in range(0, n, nb):
            kb = min(nb, n - k0)
            kblock = k0 // nb
            pck = kblock % grid.npcol
            prk = kblock % grid.nprow
            lc0 = local_index(k0, nb, grid.npcol)  # valid iff mycol == pck
            lr0 = local_index(k0, nb, grid.nprow)  # valid iff myrow == prk
            panel_flops = 0.0
            panel = None
            if mycol == pck:
                if acc is not None:
                    acc.reset()
                    panel = a_local[:, lc0:lc0 + kb]
                # "at or past j" row suffixes for every panel column, in
                # two vectorized searches instead of 2·kb scalar ones
                pcols = np.arange(k0, k0 + kb)
                i0s = np.searchsorted(grows, pcols)
                i1s = np.searchsorted(grows, pcols, side="right")

            # ---- panel factorization (process column pck)
            for j in range(k0, k0 + kb):
                t = j - k0
                if panel is not None and acc.k:
                    # Left-looking: apply the pending interior updates to
                    # column j before anyone reads it.
                    acc.apply_col(panel, t)
                if opts.pivoting:
                    if mycol == pck:
                        lj = lc0 + t
                        i0 = int(i0s[t])
                        if i0 < nlrow:
                            seg = a_local[i0:, lj]
                            ii = int(np.abs(seg).argmax())
                            cand = (abs(float(seg[ii])),
                                    int(grows[i0 + ii]))
                        else:
                            cand = (-1.0, -1)
                        best = yield from col_comm.allreduce(cand, op=_maxloc)
                        piv = best[1]
                    else:
                        piv = None
                    piv = yield from row_comm.bcast(piv, root=pck)
                else:
                    piv = j
                ipiv.append(piv)

                # global row swap j <-> piv (all process columns participate)
                if piv != j:
                    pr_j = owner_of(j, nb, grid.nprow)
                    pr_p = owner_of(piv, nb, grid.nprow)
                    if pr_j == pr_p:
                        if myrow == pr_j:
                            lj_r = local_index(j, nb, grid.nprow)
                            lp_r = local_index(piv, nb, grid.nprow)
                            if panel is not None and acc.k:
                                acc.finalize_rows(panel, (lj_r, lp_r), t + 1)
                            a_local[[lj_r, lp_r], :] = a_local[[lp_r, lj_r], :]
                    elif myrow == pr_j:
                        lj_r = local_index(j, nb, grid.nprow)
                        if panel is not None and acc.k:
                            acc.finalize_rows(panel, (lj_r,), t + 1)
                        row_j = a_local[lj_r, :].copy()
                        yield from col_comm.send(row_j, dest=pr_p, tag=3)
                        other = yield from col_comm.recv(source=pr_p, tag=3)
                        a_local[lj_r, :] = other
                    elif myrow == pr_p:
                        lp_r = local_index(piv, nb, grid.nprow)
                        if panel is not None and acc.k:
                            acc.finalize_rows(panel, (lp_r,), t + 1)
                        row_p = a_local[lp_r, :].copy()
                        yield from col_comm.send(row_p, dest=pr_j, tag=3)
                        other = yield from col_comm.recv(source=pr_j, tag=3)
                        a_local[lp_r, :] = other

                # scale column j and update the panel remainder
                if mycol == pck:
                    src_pr = owner_of(j, nb, grid.nprow)
                    lj = lc0 + t
                    lc_end = lc0 + kb
                    if myrow == src_pr:
                        lj_r = local_index(j, nb, grid.nprow)
                        if panel is not None and acc.k:
                            # The U row must carry the true values of the
                            # panel columns right of j.
                            acc.finalize_rows(panel, (lj_r,), t + 1)
                        prow = a_local[lj_r, lj:lc_end].copy()
                    else:
                        prow = None
                    prow = yield from col_comm.bcast(prow, root=src_pr)
                    pivot = prow[0]
                    if pivot == 0.0:
                        raise SingularMatrixError(f"zero pivot at column {j}")
                    i1 = int(i1s[t])
                    if i1 < nlrow:
                        a_local[i1:, lj] /= pivot
                        rest = lc_end - lj - 1
                        if panel is not None:
                            if rest:
                                acc.push(a_local[i1:, lj], i1,
                                         prow[1:], t + 1)
                        elif rest:
                            a_local[i1:, lj + 1:lc_end] -= (  # repro: allow[PERF001] -- the level-wise reference path (blocked_panel=False)
                                np.outer(a_local[i1:, lj], prow[1:])
                            )
                        panel_flops += 2.0 * (nlrow - i1) * (rest + 0.5)

            # ---- U12 block row: TRSM against L11, broadcast down columns
            c_r = int(np.searchsorted(gcols, k0 + kb))
            if myrow == prk:
                if mycol == pck:
                    l11 = a_local[lr0:lr0 + kb, lc0:lc0 + kb].copy()
                else:
                    l11 = None
                l11 = yield from row_comm.bcast(l11, root=pck)
                if c_r < nlcol:
                    u12 = scipy.linalg.solve_triangular(
                        l11, a_local[lr0:lr0 + kb, c_r:],
                        lower=True, unit_diagonal=True,
                    )
                    a_local[lr0:lr0 + kb, c_r:] = u12
                    panel_flops += float(kb) * kb * (nlcol - c_r)
                else:
                    u12 = np.zeros((kb, 0))
            else:
                u12 = None
            u12 = yield from col_comm.bcast(u12, root=prk)

            # ---- L21 panel broadcast along process rows
            r_b = int(np.searchsorted(grows, k0 + kb))
            if mycol == pck:
                l21 = a_local[r_b:, lc0:lc0 + kb].copy()
            else:
                l21 = None
            l21 = yield from row_comm.bcast(l21, root=pck)

            # ---- trailing update (local GEMM)
            if r_b < nlrow and c_r < nlcol and u12.shape[1]:
                h, w = nlrow - r_b, nlcol - c_r
                prod = np.matmul(l21, u12, out=gemm_work[:h * w].reshape(h, w))
                a_local[r_b:, c_r:] -= prod
                panel_flops += 2.0 * (nlrow - r_b) * kb * (nlcol - c_r)

            if opts.charge_compute and panel_flops:
                yield from ctx.compute(flops=panel_flops)

    # ------------------------------------------------------------- solve
    with ctx.span("scalapack:substitution"):
        # Apply the recorded pivots to the (replicated) right-hand side:
        # fold the swap chain into one index permutation and gather once
        # (bit-identical — swaps move values, they never combine them).
        perm = np.arange(n)
        for j, piv in enumerate(ipiv):
            if piv != j:
                perm[j], perm[piv] = perm[piv], perm[j]
        b = b[perm]

        nblocks = (n + nb - 1) // nb
        y = np.zeros(n)
        for kblock in range(nblocks):
            k0 = kblock * nb
            kb = min(nb, n - k0)
            prk = kblock % grid.nprow
            pck = kblock % grid.npcol
            y_k = None
            if myrow == prk:
                lr0 = local_index(k0, nb, grid.nprow)
                c_l = int(np.searchsorted(gcols, k0))
                partial = (
                    a_local[lr0:lr0 + kb, :c_l] @ y[gcols[:c_l]]
                    if c_l else np.zeros(kb)
                )
                total = yield from row_comm.reduce(partial, root=pck)
                if mycol == pck:
                    lc0 = local_index(k0, nb, grid.npcol)
                    l_kk = a_local[lr0:lr0 + kb, lc0:lc0 + kb]
                    y_k = scipy.linalg.solve_triangular(
                        l_kk, b[k0:k0 + kb] - total,
                        lower=True, unit_diagonal=True,
                    )
            y_k = yield from comm.bcast(y_k, root=grid.rank_of(prk, pck))
            y[k0:k0 + kb] = y_k

        x = np.zeros(n)
        for kblock in range(nblocks - 1, -1, -1):
            k0 = kblock * nb
            kb = min(nb, n - k0)
            prk = kblock % grid.nprow
            pck = kblock % grid.npcol
            x_k = None
            if myrow == prk:
                lr0 = local_index(k0, nb, grid.nprow)
                c_r = int(np.searchsorted(gcols, k0 + kb))
                partial = (
                    a_local[lr0:lr0 + kb, c_r:] @ x[gcols[c_r:]]
                    if c_r < nlcol else np.zeros(kb)
                )
                total = yield from row_comm.reduce(partial, root=pck)
                if mycol == pck:
                    lc0 = local_index(k0, nb, grid.npcol)
                    u_kk = a_local[lr0:lr0 + kb, lc0:lc0 + kb]
                    x_k = scipy.linalg.solve_triangular(
                        u_kk, y[k0:k0 + kb] - total, lower=False,
                    )
            x_k = yield from comm.bcast(x_k, root=grid.rank_of(prk, pck))
            x[k0:k0 + kb] = x_k

        if opts.charge_compute:
            # Substitution phase: 2n² flops spread over the grid.
            yield from ctx.compute(flops=2.0 * n * n / nprocs)
    return x
