"""Gaussian Elimination over a 2D block-cyclic layout (ScaLAPACK model).

Reimplements the pieces of ScaLAPACK the paper benchmarks (§2.2):

* ``grid`` — a BLACS-like 2D process grid;
* ``blockcyclic`` — the block-cyclic data distribution (``numroc`` and the
  global↔local index maps);
* ``pdgesv`` — right-looking LU factorization with partial pivoting plus
  the distributed triangular solves, as simulated-MPI rank programs;
* ``costmodel`` — the canonical communication/computation cost model of
  block-cyclic LU for the analytic mode.
"""

from repro.solvers.scalapack.grid import ProcessGrid
from repro.solvers.scalapack.blockcyclic import (
    numroc,
    owner_of,
    local_index,
    global_indices,
)
from repro.solvers.scalapack.pdgesv import (
    ScalapackOptions,
    pdgesv_program,
)
from repro.solvers.scalapack.costmodel import ScalapackCostModel

__all__ = [
    "ProcessGrid",
    "numroc",
    "owner_of",
    "local_index",
    "global_indices",
    "ScalapackOptions",
    "pdgesv_program",
    "ScalapackCostModel",
]
