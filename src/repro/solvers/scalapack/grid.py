"""BLACS-like process grid.

ScaLAPACK arranges the P processes in a Pr×Pc rectangle (row-major).  The
grid shape drives both load balance and the communication pattern: pivot
searches travel down process *columns*, panel broadcasts across process
*rows*.  ``ProcessGrid.squarest`` picks the most square factorization of P,
which is ScaLAPACK's standard recommendation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessGrid:
    """A Pr×Pc row-major process grid."""

    nprow: int
    npcol: int

    def __post_init__(self):
        if self.nprow <= 0 or self.npcol <= 0:
            raise ValueError(f"grid must be positive: {self.nprow}x{self.npcol}")

    @property
    def size(self) -> int:
        return self.nprow * self.npcol

    @classmethod
    def squarest(cls, nprocs: int) -> "ProcessGrid":
        """Most square Pr×Pc with Pr·Pc = nprocs and Pr ≤ Pc."""
        if nprocs <= 0:
            raise ValueError(f"process count must be positive: {nprocs}")
        pr = int(math.isqrt(nprocs))
        while nprocs % pr:
            pr -= 1
        return cls(nprow=pr, npcol=nprocs // pr)

    def coords(self, rank: int) -> tuple[int, int]:
        """(myrow, mycol) of a rank (row-major numbering)."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of {self.size}")
        return divmod(rank, self.npcol)

    def rank_of(self, myrow: int, mycol: int) -> int:
        if not (0 <= myrow < self.nprow and 0 <= mycol < self.npcol):
            raise ValueError(
                f"coords ({myrow},{mycol}) outside {self.nprow}x{self.npcol}"
            )
        return myrow * self.npcol + mycol

    def __str__(self) -> str:
        return f"{self.nprow}x{self.npcol}"
