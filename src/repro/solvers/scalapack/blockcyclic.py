"""The block-cyclic data distribution.

ScaLAPACK's layout (§2.2: "a block cyclic data distribution for dense
matrices … which can be parametrized at runtime"): global index ``g`` with
block size ``nb`` over ``p`` processes lives in block ``g // nb``, on
process ``(g // nb) % p``, at local block ``g // (nb·p)``.  These helpers
are the 1D primitives; 2D layouts apply them independently to rows and
columns.

All helpers are memoized: simulated solvers call them once per (row,
column, step) triple, so the same handful of argument tuples repeat
millions of times in a paper-scale run.  :func:`global_indices` returns a
cached **read-only** array — callers that need to mutate must copy.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.memo import register_cache


def _check(nb: int, nprocs: int) -> None:
    if nb <= 0:
        raise ValueError(f"block size must be positive: {nb}")
    if nprocs <= 0:
        raise ValueError(f"process count must be positive: {nprocs}")


@register_cache
@functools.lru_cache(maxsize=None)
def numroc(n: int, nb: int, iproc: int, nprocs: int) -> int:
    """NUMber of Rows Or Columns: local extent of a global dimension.

    The classic ScaLAPACK TOOLS routine (zero source offset).
    """
    _check(nb, nprocs)
    if n < 0:
        raise ValueError(f"dimension must be non-negative: {n}")
    if not (0 <= iproc < nprocs):
        raise ValueError(f"process {iproc} out of range [0,{nprocs})")
    nblocks = n // nb
    extra = n - nblocks * nb
    base = (nblocks // nprocs) * nb
    rem = nblocks % nprocs
    if iproc < rem:
        return base + nb
    if iproc == rem:
        return base + extra
    return base


@register_cache
@functools.lru_cache(maxsize=None)
def owner_of(g: int, nb: int, nprocs: int) -> int:
    """Process owning global index ``g``."""
    _check(nb, nprocs)
    if g < 0:
        raise ValueError(f"negative global index: {g}")
    return (g // nb) % nprocs


@register_cache
@functools.lru_cache(maxsize=None)
def local_index(g: int, nb: int, nprocs: int) -> int:
    """Local index of global index ``g`` on its owning process."""
    _check(nb, nprocs)
    if g < 0:
        raise ValueError(f"negative global index: {g}")
    local_block = g // (nb * nprocs)
    return local_block * nb + g % nb


@register_cache
@functools.lru_cache(maxsize=None)
def global_index(l: int, nb: int, iproc: int, nprocs: int) -> int:
    """Global index of local index ``l`` on process ``iproc``."""
    _check(nb, nprocs)
    if l < 0:
        raise ValueError(f"negative local index: {l}")
    local_block = l // nb
    return (local_block * nprocs + iproc) * nb + l % nb


@register_cache
@functools.lru_cache(maxsize=None)
def global_indices(n: int, nb: int, iproc: int, nprocs: int) -> np.ndarray:
    """All global indices owned by ``iproc``, in local storage order.

    The returned array is cached and marked read-only; copy before
    mutating.
    """
    _check(nb, nprocs)
    nloc = numroc(n, nb, iproc, nprocs)
    local = np.arange(nloc, dtype=np.int64)
    out = (local // nb * nprocs + iproc) * nb + local % nb
    out.flags.writeable = False
    return out
