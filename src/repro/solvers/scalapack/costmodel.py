"""Cost model of block-cyclic LU with partial pivoting (pdgetrf/pdgetrs).

The canonical ScaLAPACK LU model (Users' Guide, ch. 5): on a Pr×Pc grid
with block size nb,

* flops: ``2/3·n³ + O(n²)`` total, evenly spread by the cyclic layout;
* latency (critical-path message startups): the pivot search/swap chain
  contributes ``O(n·log₂Pr)`` small messages — one max-loc reduction and a
  row exchange *per matrix column* — and each of the ``n/nb`` panels adds
  a constant number of panel/U12 broadcasts;
* volume: per panel, the L21 broadcast moves ``≈ nb·(n−k)/Pr`` words to
  ``log₂Pc`` row peers and U12 moves ``≈ nb·(n−k)/Pc`` down columns,
  giving ``O(n²·(log₂Pc/Pr + log₂Pr/Pc))`` words on the critical path.

These series feed the analytic mode; they are cross-validated against the
DES implementation in the tests and the model-crossval bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.scalapack.grid import ProcessGrid

FLOAT_BYTES = 8


@dataclass(frozen=True)
class ScalapackCostModel:
    """Closed-form cost counts for the block-cyclic LU solver."""

    name: str = "ScaLAPACK"
    nb: int = 64

    # ------------------------------------------------------------- totals
    @staticmethod
    def flops(n: int) -> float:
        return (2.0 / 3.0) * n ** 3 + 2.0 * n ** 2

    def memory_floats(self, n: int, n_ranks: int = 1) -> float:
        """Matrix + panel/U12 work buffers per the block-partitioned scheme."""
        if n_ranks <= 1:
            return float(n) ** 2 + 2.0 * n
        grid = ProcessGrid.squarest(n_ranks)
        panel = 2.0 * n * self.nb * (1.0 / grid.nprow + 1.0 / grid.npcol)
        return float(n) ** 2 + panel * n_ranks + 2.0 * n

    def n_panels(self, n: int) -> int:
        return (n + self.nb - 1) // self.nb

    # ------------------------------------------------------ per-panel series
    def panel_starts(self, n: int) -> np.ndarray:
        return np.arange(0, n, self.nb, dtype=np.float64)

    def level_flops_per_rank(self, n: int, n_ranks: int) -> np.ndarray:
        """Per-rank flops per panel: 2·nb·(n−k)² / P (trailing GEMM dominant)."""
        k = self.panel_starts(n)
        kb = np.minimum(self.nb, n - k)
        remaining = np.maximum(n - k - kb, 0.0)
        gemm = 2.0 * kb * remaining ** 2
        panel = 2.0 * (n - k) * kb ** 2 / 2.0 + kb ** 2 * remaining
        return (gemm + panel) / n_ranks

    def pivot_messages(self, n: int, grid: ProcessGrid) -> float:
        """Critical-path small-message count of the pivoting chain.

        Per matrix column: a max-loc allreduce over Pr (2·log₂Pr hops) plus
        a pivot broadcast over Pc (log₂Pc) and one row exchange.
        """
        return n * (2.0 * np.log2(max(grid.nprow, 2))
                    + np.log2(max(grid.npcol, 2)) + 1.0)

    def panel_bcast_bytes(self, n: int, grid: ProcessGrid) -> np.ndarray:
        """Per-panel L21 + U12 broadcast payloads (bytes, per tree hop)."""
        k = self.panel_starts(n)
        kb = np.minimum(self.nb, n - k)
        remaining = np.maximum(n - k - kb, 0.0)
        l21 = kb * remaining / grid.nprow
        u12 = kb * remaining / grid.npcol
        return FLOAT_BYTES * (l21 + u12)

    def volume_floats(self, n: int, n_ranks: int) -> float:
        """Aggregate off-rank words (paper-style flat accounting)."""
        grid = ProcessGrid.squarest(n_ranks)
        per_panel = self.panel_bcast_bytes(n, grid) / FLOAT_BYTES
        tree_fanout = (grid.npcol - 1) + (grid.nprow - 1)
        swaps = float(n) * n / grid.npcol  # row exchanges across columns
        return float(per_panel.sum()) * tree_fanout + swaps

    def messages(self, n: int, n_ranks: int) -> float:
        grid = ProcessGrid.squarest(n_ranks)
        pivots = self.pivot_messages(n, grid)
        panels = self.n_panels(n) * (
            2.0 * (grid.nprow - 1) + 2.0 * (grid.npcol - 1)
        )
        return pivots * n_ranks / max(grid.nprow, 1) + panels
