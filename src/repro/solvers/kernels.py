"""Shared blocked-panel compute kernels for the simulated solvers.

Every dense solver in this repository has the same wall-clock problem:
the *algorithm* applies a rank-1 trailing update per level/column, but
executing ``np.outer`` once per level serializes all simulated ranks on
BLAS-1 work in a single interpreter.  The fix (first landed for plain
IMeP) is always the same shape:

* defer the per-level updates into a pair of panel accumulators —
  ``C`` (the broadcast column / L segment per level, stored at its
  global offset) and ``M`` (the row the level multiplies it with);
* answer any *read* of a not-yet-updated entry with a small on-the-fly
  correction (one gemv against the pending panel);
* apply the whole panel at once as one BLAS-3 update — through
  scipy's ``dgemm`` writing in place when available, with a pure-numpy
  fallback.

:class:`PanelAccumulator` packages that machinery so IMeP, ft-IMe and
the ScaLAPACK ``pdgesv`` panel factorization all share one
implementation.  The pending update it represents is::

    table[i, j]  +=  sign * Σ_t C[t, i] · M[t, j]

with ``sign = -1`` for the usual subtracted trailing update.

Bitwise contract at panel size 1
--------------------------------
With capacity ``kb = 1`` every level is flushed immediately, and each
code path is arranged to reproduce the level-wise reference arithmetic
*bitwise*: a k=1 ``dgemm`` performs the same multiply-subtract per
element as ``np.outer`` (asserted end-to-end by the solver equivalence
tests), corrected reads degrade to plain copies (``k == 0``), and the
correction expressions keep the reference operand order.  Solvers
expose this as their ``block_levels=1`` / reference modes; larger
panels change float summation order only — never the communication
pattern, charged flops, or payload sizes.
"""

from __future__ import annotations

import numpy as np

try:  # in-place panel flush (optional; numpy fallback below)
    from scipy.linalg.blas import dgemm as _dgemm
except ImportError:  # pragma: no cover - scipy is in the baked toolchain
    _dgemm = None


class PanelAccumulator:
    """Deferred rank-k update ``table += sign · Cᵀ M`` over ≤ kb levels.

    ``C`` is ``(kb, nc)`` — one pending row per deferred level, indexed
    like the table's *rows* (IMe: the level's chat at its global row
    offset) or *local rows* (ScaLAPACK: the scaled L segment).  ``M`` is
    ``(kb, nm)`` — the matching multiplier row, indexed like the table's
    *columns*.  The ``(kb, n)`` layout keeps each level's push
    contiguous and feeds the flush gemm its transposed operand directly.
    """

    __slots__ = ("kb", "nc", "nm", "sign", "zero_c_prefix", "k", "c", "m")

    def __init__(self, kb: int, nc: int, nm: int, sign: float = -1.0,
                 zero_c_prefix: bool = True):
        self.kb = int(kb)
        self.nc = int(nc)
        self.nm = int(nm)
        self.sign = float(sign)
        #: IMe-style users push at monotonically increasing offsets and
        #: only ever read at or right of them, so zeroing the C prefix
        #: is dead work they opt out of; users whose reads span full C
        #: columns (``apply_col``/``finalize_rows`` from 0) keep it.
        self.zero_c_prefix = bool(zero_c_prefix)
        self.k = 0                       # pending levels
        self.c = np.empty((self.kb, self.nc))
        self.m = np.empty((self.kb, self.nm))

    # ------------------------------------------------------------- writes
    def push(self, c_values: np.ndarray, c_lo: int,
             m_values: np.ndarray, m_lo: int = 0) -> int:
        """Defer one level: C row at offset ``c_lo``, M row at ``m_lo``.

        Entries outside the given segments are zeroed, so reads and
        flushes may span the full width.  Returns the slot index.
        """
        idx = self.k
        if self.zero_c_prefix:
            self.c[idx, :c_lo] = 0.0
        self.c[idx, c_lo:c_lo + len(c_values)] = c_values
        if m_lo or m_lo + len(m_values) < self.nm:
            self.m[idx, :] = 0.0
            self.m[idx, m_lo:m_lo + len(m_values)] = m_values
        else:
            self.m[idx] = m_values
        self.k = idx + 1
        return idx

    def zero_m(self, j: int) -> None:
        """Void all pending updates to table column ``j`` (its final
        value was just written directly — e.g. a normalized pivot
        column)."""
        self.m[:self.k, j] = 0.0

    # -------------------------------------------------------------- reads
    def correction_row(self, i: int) -> np.ndarray:
        """Unsigned pending contribution to table row ``i``: C[:k, i]·M."""
        return self.c[:self.k, i] @ self.m[:self.k]

    def row(self, table: np.ndarray, i: int) -> np.ndarray:
        """Row ``i`` of the true (fully updated) table."""
        if not self.k:
            return table[i, :].copy()
        if self.sign < 0:
            return table[i, :] - self.correction_row(i)
        return table[i, :] + self.correction_row(i)

    def col(self, table: np.ndarray, j: int, lo: int = 0) -> np.ndarray:
        """Column ``j`` of the true table, rows ``lo:``."""
        if not self.k:
            return table[lo:, j].copy()
        corr = self.m[:self.k, j] @ self.c[:self.k, lo:]
        if self.sign < 0:
            return table[lo:, j] - corr
        return table[lo:, j] + corr

    def apply_col(self, table: np.ndarray, j: int, lo: int = 0) -> None:
        """Materialize column ``j`` in place (rows ``lo:``)."""
        if not self.k:
            return
        corr = self.m[:self.k, j] @ self.c[:self.k, lo:]
        if self.sign < 0:
            table[lo:, j] -= corr
        else:
            table[lo:, j] += corr

    def finalize_rows(self, table: np.ndarray, rows, m_lo: int = 0) -> None:
        """Materialize table rows in place over columns ``m_lo:`` and
        drop them from the pending panel (their C entries are zeroed) —
        for rows about to be exchanged, e.g. a pivot row swap."""
        k = self.k
        if not k:
            return
        hi = table.shape[1]  # table may be narrower than M (partial panel)
        for r in rows:
            corr = self.c[:k, r] @ self.m[:k, m_lo:hi]
            if self.sign < 0:
                table[r, m_lo:] -= corr
            else:
                table[r, m_lo:] += corr
            self.c[:k, r] = 0.0

    # -------------------------------------------------------------- flush
    def flush(self, table: np.ndarray, lo: int = 0) -> None:
        """Apply the whole pending panel to table rows ``lo:`` as one
        BLAS-3 update, then reset."""
        k = self.k
        if k and lo < self.nc:
            tail = table[lo:, :]
            if _dgemm is not None and tail.flags.c_contiguous:
                # In-place trailing update via the transposed problem:
                # tail.T is an F-contiguous view, so BLAS can accumulate
                # the product without the temporary the numpy expression
                # below materializes.
                _dgemm(alpha=self.sign, a=self.m[:k].T, b=self.c[:k, lo:],
                       beta=1.0, c=tail.T, overwrite_c=1)
            elif self.sign < 0:
                tail -= self.c[:k, lo:].T @ self.m[:k]
            else:
                tail += self.c[:k, lo:].T @ self.m[:k]
        self.k = 0

    def reset(self) -> None:
        """Discard the pending panel without applying it."""
        self.k = 0
