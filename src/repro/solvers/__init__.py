"""Linear-system solvers: the two algorithms the paper compares.

* :mod:`repro.solvers.ime` — the Inhibition Method (IMe): an exact,
  pivot-free, iterative solver working on the n×2n inhibition table, with
  the column-wise parallel scheme (IMeP) of §2.1.
* :mod:`repro.solvers.scalapack` — Gaussian Elimination with partial
  pivoting over a 2D block-cyclic layout, modelled on ScaLAPACK's
  ``pdgesv`` (§2.2).
* :mod:`repro.solvers.dense` — sequential reference solvers and residual
  checks used to validate both.
"""

from repro.solvers.dense import (
    gaussian_elimination,
    gauss_jordan,
    residual_norm,
    relative_residual,
)

__all__ = [
    "gaussian_elimination",
    "gauss_jordan",
    "residual_norm",
    "relative_residual",
]
