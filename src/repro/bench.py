"""Wall-clock benchmark of the simulator itself.

The paper's sweeps reach n = 34560 across the Table 1 rank counts, so the
simulator's own speed — not the modeled virtual time — is what caps how
far the figure suite and the paper-scale skeletons can go.  This module
times end-to-end IMe and ScaLAPACK jobs at several ``(n, ranks)`` points,
in both collective modes (``fast`` closed-form vs ``message`` per-hop),
and records the results in ``BENCH_simperf.json`` at the repo root so
every subsequent PR has a wall-clock trajectory to compare against.

Three front ends share this implementation: ``tools/bench_sim.py``,
``repro bench``, and the ``make bench`` / ``make bench-quick`` targets
(the latter is the CI guard: quick points only, fail when fast-path
wall-clock regresses more than 2x against the committed baseline).

See ``docs/performance.md`` for the file format and the fast-path
equivalence contract.
"""

from __future__ import annotations

import argparse
import json
import resource
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.machine import marconi_a3, small_test_machine
from repro.cluster.placement import LoadShape, place_ranks
from repro.runtime.job import Job
from repro.workloads.generator import generate_system

SCHEMA_VERSION = 1
BASELINE_NAME = "BENCH_simperf.json"
#: ``make bench-quick`` fails when current wall-clock exceeds baseline × this
REGRESSION_FACTOR = 2.0


@dataclass(frozen=True)
class BenchPoint:
    """One benchmarked configuration."""

    solver: str  # "ime" | "ime-ft" | "scalapack" | "scalapack-skel"
    #            # | "ime-xskel" | "scalapack-xskel" (exact skeletons)
    n: int
    ranks: int
    nb: int | None = None  # ScaLAPACK block size
    modes: tuple[str, ...] = ("fast", "message")
    quick: bool = False  # part of the bench-quick CI guard
    machine: str = "small"  # "small" | "marconi" (paper-scale points)

    @property
    def label(self) -> str:
        return f"{self.solver}-n{self.n}-p{self.ranks}"


#: ``scalapack-skel`` is the headline point: the ScaLAPACK n = 4320,
#: 16-rank communication skeleton (full per-column pivot chain, no
#: numerics — see :mod:`repro.obs.symbolic`), which isolates the
#: collective engine the fast path accelerates.  The real-numerics
#: points keep the end-to-end trajectory honest: there the dense-solver
#: flops on the critical path bound the achievable speedup.
DEFAULT_POINTS: tuple[BenchPoint, ...] = (
    BenchPoint("ime", 1080, 4, quick=True),
    BenchPoint("ime-ft", 1080, 4, quick=True),
    BenchPoint("scalapack", 1080, 4, nb=40, quick=True),
    BenchPoint("ime", 2160, 8),
    BenchPoint("ime-ft", 2160, 8),
    BenchPoint("ime", 2160, 16),
    BenchPoint("scalapack", 2160, 16, nb=48, quick=True),
    BenchPoint("scalapack", 4320, 16, nb=48),
    BenchPoint("scalapack-skel", 4320, 16, nb=48),
)

#: ``repro bench --skeleton``: the paper's largest matrix at Table-1 rank
#: counts on Marconi A3, through the *exact* skeletons (the full
#: communication schedule with bitwise-faithful wire sizes and flop
#: charges — see :mod:`repro.obs.symbolic`).  One machine, one sitting:
#: these are the points that prove the aggregate closed forms carry the
#: DES to n = 34560.  Fast mode only — the message-level reference at
#: this scale is exactly what the closed forms exist to avoid.
PAPER_SKELETON_POINTS: tuple[BenchPoint, ...] = (
    BenchPoint("ime-xskel", 34560, 144, modes=("fast",), machine="marconi"),
    BenchPoint("ime-xskel", 34560, 576, modes=("fast",), machine="marconi"),
    BenchPoint("ime-xskel", 34560, 1296, modes=("fast",), machine="marconi"),
    BenchPoint("ime-xskel", 34560, 2304, modes=("fast",), machine="marconi"),
    BenchPoint("ime-xskel", 34560, 3188, modes=("fast",), machine="marconi"),
    BenchPoint("scalapack-xskel", 34560, 144, nb=64, modes=("fast",),
               machine="marconi"),
    BenchPoint("scalapack-xskel", 34560, 1296, nb=64, modes=("fast",),
               machine="marconi"),
    BenchPoint("scalapack-xskel", 34560, 2304, nb=64, modes=("fast",),
               machine="marconi"),
    BenchPoint("scalapack-xskel", 34560, 3188, nb=64, modes=("fast",),
               machine="marconi"),
)


def _make_program(point: BenchPoint, system):
    if point.solver == "ime":
        from repro.solvers.ime.parallel import ime_parallel_program

        def program(ctx, comm):
            sys_arg = system if comm.rank == 0 else None
            return (yield from ime_parallel_program(ctx, comm,
                                                    system=sys_arg))
    elif point.solver == "ime-ft":
        from repro.solvers.ime.ft_parallel import ime_ft_parallel_program

        def program(ctx, comm):
            sys_arg = system if comm.rank == 0 else None
            return (yield from ime_ft_parallel_program(ctx, comm,
                                                       system=sys_arg))
    elif point.solver == "scalapack":
        from repro.solvers.scalapack.pdgesv import (
            ScalapackOptions,
            pdgesv_program,
        )
        options = ScalapackOptions(nb=point.nb or 8)

        def program(ctx, comm):
            sys_arg = system if comm.rank == 0 else None
            return (yield from pdgesv_program(ctx, comm, system=sys_arg,
                                              options=options))
    elif point.solver == "scalapack-skel":
        from repro.obs.symbolic import (
            SymbolicOptions,
            scalapack_skeleton_program,
        )
        options = SymbolicOptions(nb=point.nb or 64, pivot_per_column=True)

        def program(ctx, comm):
            return (yield from scalapack_skeleton_program(
                ctx, comm, n=point.n, options=options))
    elif point.solver in ("ime-xskel", "scalapack-xskel"):
        from repro.obs.symbolic import (
            EXACT_SKELETON_PROGRAMS,
            SymbolicOptions,
        )
        fn = EXACT_SKELETON_PROGRAMS[point.solver.rsplit("-", 1)[0]]
        options = SymbolicOptions(nb=point.nb or 8)

        def program(ctx, comm):
            return (yield from fn(ctx, comm, n=point.n, options=options))
    else:
        raise ValueError(f"unknown solver: {point.solver}")
    return program


def run_point(point: BenchPoint, mode: str, seed: int = 0,
              repeats: int = 1, shards: int = 1) -> dict:
    """Time one end-to-end job; returns wall/virtual/traffic/energy.

    ``repeats`` > 1 reports the best-of-k wall time (standard benchmark
    practice — the minimum is the least noise-contaminated estimate of
    the code's speed).  The simulated quantities are deterministic and
    identical across repeats; only the wall clock varies.

    ``shards`` > 1 additionally times the same point space-parallelized
    across shard workers (:mod:`repro.simmpi.shard`), asserts the
    sharded run's modeled quantities are identical to the
    single-process run, and records ``sharded_wall_s`` /
    ``shard_speedup`` / per-worker ``shard_walls`` next to the
    single-process ``wall_s``.

    ``maxrss_kb`` records the process peak RSS *after* the point ran —
    a high-water mark, so per-point deltas in a suite are upper bounds;
    ``tools/bench_compare.py`` uses them to flag memory regressions.
    """
    if point.machine == "marconi":
        machine = marconi_a3()
        shape = LoadShape.FULL
    else:
        machine = small_test_machine(
            cores_per_socket=max(1, point.ranks // 2)
            if point.ranks % 2 == 0 else point.ranks
        )
        shape = LoadShape.FULL if point.ranks % 2 == 0 \
            else LoadShape.HALF_ONE_SOCKET
    # allow_tail: the paper grid's p=3188 leaves a partial last node.
    placement = place_ranks(point.ranks, shape, machine, allow_tail=True)
    # Skeleton points replay communication structure only — no matrix.
    system = (generate_system(point.n, seed=seed)
              if "skel" not in point.solver else None)
    wall = None
    for _ in range(max(1, repeats)):
        job = Job(machine, placement)
        job.sim.fast_collectives = (mode == "fast")
        job.sim.fast_p2p = (mode == "fast")
        program = _make_program(point, system)
        # The self-benchmark is the one place wall time is the measurand.
        t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
        result = job.run(program)
        dt = time.perf_counter() - t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
        wall = dt if wall is None else min(wall, dt)
    out = {
        "mode": mode,
        "wall_s": wall,
        "virtual_s": result.duration,
        "messages": result.traffic["messages"],
        "bytes": result.traffic["bytes"],
        "total_energy_j": result.total_energy_j,
        "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if shards > 1:
        sharded_wall = None
        for _ in range(max(1, repeats)):
            job = Job(machine, placement, shards=shards)
            job.sim.fast_collectives = (mode == "fast")
            job.sim.fast_p2p = (mode == "fast")
            program = _make_program(point, system)
            t0 = time.perf_counter()  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
            sharded = job.run(program)
            dt = time.perf_counter() - t0  # repro: allow[DET001,DET101] -- wall-clock IS the measurand here
            sharded_wall = dt if sharded_wall is None \
                else min(sharded_wall, dt)
        if (sharded.duration != result.duration
                or sharded.traffic != result.traffic
                or sharded.total_energy_j != result.total_energy_j):
            raise AssertionError(
                f"{point.label}: sharded run diverged from the "
                f"single-process reference (shards={shards})"
            )
        out["shards"] = shards
        out["sharded_wall_s"] = sharded_wall
        out["shard_speedup"] = wall / sharded_wall
        if sharded.shard_walls is not None:
            out["shard_walls"] = list(sharded.shard_walls)
    return out


def run_suite(points=None, quick: bool = False,
              modes: tuple[str, ...] | None = None,
              progress=None, repeats: int = 3,
              skeleton: bool = False, shards: int = 1) -> dict:
    """Run the benchmark suite; returns the ``BENCH_simperf.json`` dict.

    ``skeleton=True`` selects :data:`PAPER_SKELETON_POINTS` (the exact
    skeletons at the paper's n = 34560 on Marconi A3) instead of
    :data:`DEFAULT_POINTS`.  ``shards`` > 1 times every fast-mode point
    both single-process and space-parallel (see :func:`run_point`).
    """
    if points is None:
        points = PAPER_SKELETON_POINTS if skeleton else DEFAULT_POINTS
    entries = []
    for point in points:
        if quick and not point.quick:
            continue
        results = {}
        for mode in (modes if modes is not None else point.modes):
            if progress is not None:
                progress(f"{point.label} [{mode}] ...")
            results[mode] = run_point(
                point, mode, repeats=repeats,
                shards=shards if mode == "fast" else 1,
            )
        entry = {
            "label": point.label,
            "solver": point.solver,
            "n": point.n,
            "ranks": point.ranks,
            "nb": point.nb,
            "quick": point.quick,
            "machine": point.machine,
            "results": results,
        }
        if "fast" in results and "message" in results:
            entry["speedup"] = (
                results["message"]["wall_s"] / results["fast"]["wall_s"]
            )
        entries.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "points": entries,
    }


def format_table(report: dict) -> str:
    """Human-readable rendering of a benchmark report."""
    header = (f"{'point':<24} {'mode':<8} {'wall_s':>9} {'virtual_s':>11} "
              f"{'messages':>9} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for entry in report["points"]:
        speedup = entry.get("speedup")
        for i, (mode, r) in enumerate(entry["results"].items()):
            tail = (f"{speedup:>8.2f}" if speedup is not None and i == 0
                    else f"{'':>8}")
            lines.append(
                f"{entry['label'] if i == 0 else '':<24} {mode:<8} "
                f"{r['wall_s']:>9.3f} {r['virtual_s']:>11.4e} "
                f"{r['messages']:>9d} {tail}"
            )
    return "\n".join(lines)


def check_regression(current: dict, baseline: dict,
                     factor: float = REGRESSION_FACTOR) -> list[str]:
    """Compare fast-path wall-clock of a report against a baseline.

    Every point of the *current* report that also exists in the
    baseline is checked (``bench --quick --check`` reports only the
    quick points, so its guard is unchanged; ``bench --skeleton
    --check`` guards the paper-scale skeleton points the same way).
    Returns a list of human-readable failures (empty = pass).  Points
    missing from either side are skipped — the guard is about
    regressions, not coverage.
    """
    base_by_label = {e["label"]: e for e in baseline.get("points", [])}
    failures = []
    for entry in current.get("points", []):
        base = base_by_label.get(entry["label"])
        if base is None:
            continue
        cur_fast = entry.get("results", {}).get("fast")
        base_fast = base.get("results", {}).get("fast")
        if cur_fast is None or base_fast is None:
            continue
        if cur_fast["wall_s"] > factor * base_fast["wall_s"]:
            failures.append(
                f"{entry['label']}: fast wall {cur_fast['wall_s']:.3f}s "
                f"> {factor:.1f}x baseline {base_fast['wall_s']:.3f}s"
            )
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark options (shared with ``repro bench``)."""
    parser.add_argument("--quick", action="store_true",
                        help="only the small CI-guard points")
    parser.add_argument("--skeleton", action="store_true",
                        help="the paper-scale exact-skeleton points "
                             "(n=34560 on Marconi A3, fast mode only)")
    parser.add_argument("--modes", default=None,
                        help="comma-separated subset of fast,message")
    parser.add_argument("--only", default=None, metavar="LABELS",
                        help="comma-separated point labels to run (a "
                             "subset of the selected suite); combined "
                             "with --write this updates just those "
                             "points in the baseline")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-k wall-clock per point (default 3; "
                             "1 for the --skeleton paper-scale suite)")
    parser.add_argument("--shards", type=int, nargs="?", const=2, default=1,
                        metavar="N",
                        help="also time each fast-mode point sharded "
                             "across N worker processes (default 2 when "
                             "given without a value) and record the "
                             "shard speedup; modeled quantities are "
                             "asserted identical to the single-process "
                             "run")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")
    parser.add_argument("--table", action="store_true",
                        help="print the human-readable table (default)")
    parser.add_argument("--write", metavar="PATH", nargs="?",
                        const=BASELINE_NAME, default=None,
                        help=f"write the report (default {BASELINE_NAME}); "
                             "an existing file is merged by point label, "
                             "so partial suites update their points only")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when quick-point fast wall-clock "
                             f"regresses >{REGRESSION_FACTOR:g}x vs the "
                             "committed baseline")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline JSON for --check "
                             f"(default: {BASELINE_NAME} at the repo root)")


def build_parser(prog: str = "bench_sim") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Time end-to-end simulated solver runs (see "
                    "docs/performance.md).",
    )
    add_arguments(parser)
    return parser


def _default_baseline_path() -> Path:
    return Path(__file__).resolve().parents[2] / BASELINE_NAME


def merge_reports(base: dict, new: dict) -> dict:
    """Merge two reports by point label: ``new`` wins on collisions,
    ``base``-only points are kept in their original order.  This is how
    ``--write`` updates the committed baseline from a partial suite
    (e.g. ``--skeleton``) without dropping the other points."""
    by_label = {e["label"]: e for e in base.get("points", [])}
    by_label.update({e["label"]: e for e in new.get("points", [])})
    merged = dict(new)
    merged["points"] = list(by_label.values())
    return merged


def run_from_args(args) -> int:
    """Execute a parsed benchmark invocation (CLI entry points share this)."""
    modes = tuple(args.modes.split(",")) if args.modes else None
    skeleton = getattr(args, "skeleton", False)
    repeats = getattr(args, "repeats", None)
    if repeats is None:
        # Paper-scale skeleton points run minutes each; one repeat is
        # the practical default there (override with --repeats).
        repeats = 1 if skeleton else 3
    points = None
    only = getattr(args, "only", None)
    if only:
        wanted = set(only.split(","))
        pool = PAPER_SKELETON_POINTS if skeleton else DEFAULT_POINTS
        points = tuple(p for p in pool if p.label in wanted)
        missing = wanted - {p.label for p in points}
        if missing:
            print(f"unknown point label(s): {', '.join(sorted(missing))}")
            return 2
    report = run_suite(points=points, quick=args.quick, modes=modes,
                       progress=lambda msg: print(msg, flush=True),
                       repeats=repeats,
                       skeleton=skeleton,
                       shards=getattr(args, "shards", 1) or 1)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_table(report))
    if args.write:
        out = Path(args.write)
        written = report
        if out.exists():
            written = merge_reports(json.loads(out.read_text()), report)
        out.write_text(json.dumps(written, indent=2) + "\n")
        print(f"wrote {args.write}")
    if args.check:
        path = Path(args.baseline) if args.baseline \
            else _default_baseline_path()
        if not path.exists():
            print(f"no baseline at {path}; nothing to check against")
            return 1
        baseline = json.loads(path.read_text())
        failures = check_regression(report, baseline)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}")
            return 1
        print("bench-quick: within budget of committed baseline")
    return 0


def main(argv=None, prog: str = "bench_sim") -> int:
    return run_from_args(build_parser(prog).parse_args(argv))
