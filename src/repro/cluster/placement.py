"""Slurm-like rank placement: the deployment shapes of the paper's Table 1.

The paper evaluates three load shapes per rank count:

* **full load** — 48 ranks/node, 24 per socket (both sockets full);
* **half load, one socket** — 24 ranks/node, all on socket 0 (socket 1 idle);
* **half load, two sockets** — 24 ranks/node, 12 per socket.

``place_ranks`` turns a :class:`Layout` into an explicit rank → (node,
socket, core) map; the layouts for ranks ∈ {144, 576, 1296} reproduce
Table 1 row by row (``table1_layouts``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.machine import MachineSpec
from repro.cluster.topology import Core


class LoadShape(enum.Enum):
    """The three processor-load shapes of Table 1 / Figure 3."""

    FULL = "full"                      # c ranks/socket on both sockets
    HALF_ONE_SOCKET = "half-1socket"   # c ranks on socket 0, socket 1 idle
    HALF_TWO_SOCKETS = "half-2sockets" # c/2 ranks on each socket

    def ranks_per_socket(self, cores_per_socket: int) -> tuple[int, int]:
        if self is LoadShape.FULL:
            return (cores_per_socket, cores_per_socket)
        if self is LoadShape.HALF_ONE_SOCKET:
            return (cores_per_socket, 0)
        if cores_per_socket % 2:
            raise ValueError(
                f"{self} needs an even socket size, got {cores_per_socket}"
            )
        return (cores_per_socket // 2, cores_per_socket // 2)


@dataclass(frozen=True)
class Layout:
    """One Table 1 row: how many nodes, and the per-socket rank counts.

    ``tail_ranks`` > 0 marks a partially-filled last node (a Slurm
    allocation whose rank count does not divide the per-node capacity,
    e.g. the paper grid's p = 3188 on 48-core nodes: 66 full nodes plus
    20 ranks on a 67th).  Only DES paths opt into tail layouts — the
    analytic model assumes uniform nodes and keeps the strict invariant.
    """

    ranks: int
    nodes: int
    ranks_per_node: int
    ranks_per_socket: tuple[int, int]
    shape: LoadShape
    tail_ranks: int = 0

    def __post_init__(self):
        full_nodes = self.nodes - (1 if self.tail_ranks else 0)
        if self.ranks != full_nodes * self.ranks_per_node + self.tail_ranks:
            raise ValueError(
                f"{self.ranks} ranks != {full_nodes} nodes × "
                f"{self.ranks_per_node} ranks/node + {self.tail_ranks} tail"
            )
        if not 0 <= self.tail_ranks < self.ranks_per_node:
            raise ValueError(
                f"tail {self.tail_ranks} not in [0, {self.ranks_per_node})"
            )
        if sum(self.ranks_per_socket) != self.ranks_per_node:
            raise ValueError(
                f"socket split {self.ranks_per_socket} != "
                f"{self.ranks_per_node} ranks/node"
            )

    @property
    def sockets_used(self) -> int:
        return sum(1 for r in self.ranks_per_socket if r > 0)

    def describe(self) -> str:
        tail = f" + {self.tail_ranks}-rank tail" if self.tail_ranks else ""
        return (f"{self.ranks} ranks on {self.nodes} nodes "
                f"({self.ranks_per_node}/node, "
                f"{self.ranks_per_socket[0]}+{self.ranks_per_socket[1]} "
                f"per socket{tail})")


def layout_for(ranks: int, shape: LoadShape, machine: MachineSpec,
               allow_tail: bool = False) -> Layout:
    """Build the Table 1 layout for a rank count and load shape.

    ``allow_tail=True`` accepts rank counts that do not divide the
    per-node capacity by placing the remainder on one extra node (DES
    paths only; the analytic closed forms assume uniform nodes).
    """
    per_socket = shape.ranks_per_socket(machine.cores_per_socket)
    ranks_per_node = sum(per_socket)
    tail = ranks % ranks_per_node
    if tail and not allow_tail:
        raise ValueError(
            f"{ranks} ranks not divisible by {ranks_per_node} ranks/node"
        )
    return Layout(
        ranks=ranks,
        nodes=ranks // ranks_per_node + (1 if tail else 0),
        ranks_per_node=ranks_per_node,
        ranks_per_socket=per_socket,
        shape=shape,
        tail_ranks=tail,
    )


#: The rank counts of Table 1 (square numbers, as IMe requires).
TABLE1_RANKS = (144, 576, 1296)


def table1_layouts(machine: MachineSpec,
                   ranks_list: tuple[int, ...] = TABLE1_RANKS) -> list[Layout]:
    """All nine Table 1 configurations (3 rank counts × 3 load shapes)."""
    return [
        layout_for(ranks, shape, machine)
        for ranks in ranks_list
        for shape in (LoadShape.FULL, LoadShape.HALF_ONE_SOCKET,
                      LoadShape.HALF_TWO_SOCKETS)
    ]


class Placement:
    """Explicit rank → core map for one layout on one machine."""

    def __init__(self, layout: Layout, machine: MachineSpec):
        self.layout = layout
        self.machine = machine
        self._assignments: list[Core] = []
        per_socket = layout.ranks_per_socket
        if max(per_socket) > machine.cores_per_socket:
            raise ValueError(
                f"socket split {per_socket} exceeds "
                f"{machine.cores_per_socket} cores/socket"
            )
        if len(per_socket) > machine.sockets_per_node:
            raise ValueError("layout uses more sockets than the machine has")
        full_nodes = layout.nodes - (1 if layout.tail_ranks else 0)
        for node_id in range(full_nodes):
            for socket_id, count in enumerate(per_socket):
                for core_index in range(count):
                    self._assignments.append(
                        Core(node_id=node_id, socket_id=socket_id,
                             index=core_index)
                    )
        # Partial tail node: block-fill sockets in shape order, the way
        # Slurm packs the last node of an indivisible allocation.
        remaining = layout.tail_ranks
        for socket_id, count in enumerate(per_socket):
            for core_index in range(min(count, remaining)):
                self._assignments.append(
                    Core(node_id=full_nodes, socket_id=socket_id,
                         index=core_index)
                )
            remaining -= min(count, remaining)
        assert len(self._assignments) == layout.ranks

    @property
    def n_ranks(self) -> int:
        return len(self._assignments)

    def core_of(self, rank: int) -> Core:
        return self._assignments[rank]

    def node_of(self, rank: int) -> int:
        return self._assignments[rank].node_id

    def socket_of(self, rank: int) -> int:
        return self._assignments[rank].socket_id

    def ranks_on_node(self, node_id: int) -> list[int]:
        return [r for r, core in enumerate(self._assignments)
                if core.node_id == node_id]

    def ranks_on_socket(self, node_id: int, socket_id: int) -> list[int]:
        return [r for r, core in enumerate(self._assignments)
                if core.node_id == node_id and core.socket_id == socket_id]

    def active_sockets(self, node_id: int) -> list[int]:
        return sorted({core.socket_id for core in self._assignments
                       if core.node_id == node_id})


def place_ranks(ranks: int, shape: LoadShape, machine: MachineSpec,
                allow_tail: bool = False) -> Placement:
    """Convenience: layout + placement in one step."""
    return Placement(layout_for(ranks, shape, machine, allow_tail=allow_tail),
                     machine)
