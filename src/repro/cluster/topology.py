"""Structural model of a compute cluster: cores, sockets, nodes.

The topology is purely structural; energy accounting is attached per socket
and per DRAM domain by :mod:`repro.energy` when a machine is instantiated
(see :class:`repro.energy.msr.MsrDevice`).  Identifiers follow the paper's
vocabulary: each node has *package 0 / package 1* (the two sockets) and
*DRAM 0 / DRAM 1* (one memory domain per socket).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Core:
    """One physical core, addressable as (node, socket, index-in-socket)."""

    node_id: int
    socket_id: int
    index: int  # index within the socket

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.node_id, self.socket_id, self.index)

    def __repr__(self) -> str:
        return f"<Core n{self.node_id}.s{self.socket_id}.c{self.index}>"


@dataclass
class Socket:
    """A CPU package: the granularity of RAPL PKG/DRAM energy domains."""

    node_id: int
    socket_id: int
    cores: list[Core] = field(default_factory=list)

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def __repr__(self) -> str:
        return f"<Socket n{self.node_id}.s{self.socket_id} cores={self.n_cores}>"


@dataclass
class Node:
    """A compute node: sockets plus their DRAM domains."""

    node_id: int
    sockets: list[Socket] = field(default_factory=list)

    @property
    def n_sockets(self) -> int:
        return len(self.sockets)

    @property
    def n_cores(self) -> int:
        return sum(s.n_cores for s in self.sockets)

    def all_cores(self) -> list[Core]:
        return [core for socket in self.sockets for core in socket.cores]

    def __repr__(self) -> str:
        return f"<Node {self.node_id} sockets={self.n_sockets} cores={self.n_cores}>"


class Cluster:
    """A collection of identical nodes."""

    def __init__(self, n_nodes: int, sockets_per_node: int, cores_per_socket: int):
        if n_nodes <= 0 or sockets_per_node <= 0 or cores_per_socket <= 0:
            raise ValueError(
                "cluster dimensions must be positive: "
                f"nodes={n_nodes}, sockets={sockets_per_node}, "
                f"cores={cores_per_socket}"
            )
        self.sockets_per_node = sockets_per_node
        self.cores_per_socket = cores_per_socket
        self.nodes: list[Node] = []
        for node_id in range(n_nodes):
            sockets = [
                Socket(
                    node_id=node_id,
                    socket_id=sid,
                    cores=[
                        Core(node_id=node_id, socket_id=sid, index=c)
                        for c in range(cores_per_socket)
                    ],
                )
                for sid in range(sockets_per_node)
            ]
            self.nodes.append(Node(node_id=node_id, sockets=sockets))

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __repr__(self) -> str:
        return (
            f"<Cluster nodes={self.n_nodes} "
            f"({self.sockets_per_node}x{self.cores_per_socket} cores/node)>"
        )
