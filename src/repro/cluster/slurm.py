"""Slurm-like batch directives → placements.

The paper's jobs were submitted through Slurm ("the supercomputer batch job
submission is managed through Slurm", §5) with per-node/per-socket task
directives, and §5.3 explicitly doubts the socket directives were honoured
("this observation raises some doubts about the effectiveness of the Slurm
directives").  This module provides:

* a parser for the relevant ``#SBATCH``/``srun`` directives
  (``--ntasks``, ``--ntasks-per-node``, ``--ntasks-per-socket``,
  ``--distribution``) into the placement layer's :class:`Layout`;
* two binding behaviours — ``STRICT`` honours the socket directive
  (ranks packed onto socket 0 first), while ``LEAKY`` models the paper's
  suspicion: the scheduler ignores ``--ntasks-per-socket`` and spreads
  tasks across both sockets anyway.  Under ``LEAKY``, a nominally
  one-socket deployment produces near-equal package-0/package-1 energy —
  the alternative hypothesis for the §5.3 anomaly (the baseline
  explanation, also reproduced by this library, is simply the idle
  socket's power floor).
"""

from __future__ import annotations

import enum
import re
import shlex
from dataclasses import dataclass

from repro.cluster.machine import MachineSpec
from repro.cluster.placement import Layout, LoadShape, Placement
from repro.cluster.topology import Core


class SlurmError(ValueError):
    """Malformed or inconsistent batch directives."""


class SocketBinding(enum.Enum):
    """How faithfully the scheduler honours ``--ntasks-per-socket``."""

    STRICT = "strict"
    LEAKY = "leaky"


@dataclass(frozen=True)
class SlurmDirectives:
    """The subset of Slurm options the paper's job scripts exercise."""

    ntasks: int
    ntasks_per_node: int | None = None
    ntasks_per_socket: int | None = None
    distribution: str = "block"

    def __post_init__(self):
        if self.ntasks <= 0:
            raise SlurmError(f"--ntasks must be positive: {self.ntasks}")
        if self.ntasks_per_node is not None and self.ntasks_per_node <= 0:
            raise SlurmError(
                f"--ntasks-per-node must be positive: {self.ntasks_per_node}"
            )
        if self.ntasks_per_socket is not None and self.ntasks_per_socket <= 0:
            raise SlurmError(
                f"--ntasks-per-socket must be positive: {self.ntasks_per_socket}"
            )
        if self.distribution not in ("block", "cyclic"):
            raise SlurmError(
                f"unsupported --distribution: {self.distribution!r}"
            )


_DIRECTIVE_RE = re.compile(r"^#SBATCH\s+(.*)$")

_OPTION_ALIASES = {
    "-n": "--ntasks",
}


def parse_batch_script(text: str) -> SlurmDirectives:
    """Extract directives from ``#SBATCH`` lines of a batch script."""
    options: dict[str, str] = {}
    for line in text.splitlines():
        match = _DIRECTIVE_RE.match(line.strip())
        if not match:
            continue
        for token in shlex.split(match.group(1)):
            if "=" in token and token.startswith("--"):
                key, _, value = token.partition("=")
                options[key] = value
            elif token.startswith("-"):
                options[_OPTION_ALIASES.get(token, token)] = ""
            elif options and list(options.values())[-1] == "":
                # value for the preceding short option
                last_key = list(options)[-1]
                options[last_key] = token
    return parse_options(options)


def parse_options(options: dict[str, str]) -> SlurmDirectives:
    """Build directives from an option map (``--ntasks`` → value)."""
    def intval(key):
        raw = options.get(key)
        if raw is None or raw == "":
            return None
        try:
            return int(raw)
        except ValueError:
            raise SlurmError(f"{key} expects an integer, got {raw!r}")

    ntasks = intval("--ntasks")
    if ntasks is None:
        raise SlurmError("--ntasks is required")
    return SlurmDirectives(
        ntasks=ntasks,
        ntasks_per_node=intval("--ntasks-per-node"),
        ntasks_per_socket=intval("--ntasks-per-socket"),
        distribution=options.get("--distribution", "block") or "block",
    )


def layout_from_directives(directives: SlurmDirectives,
                           machine: MachineSpec) -> Layout:
    """Resolve directives into a placement layout on a machine."""
    rpn = directives.ntasks_per_node or machine.cores_per_node
    if rpn > machine.cores_per_node:
        raise SlurmError(
            f"--ntasks-per-node={rpn} exceeds {machine.cores_per_node} "
            "cores/node"
        )
    if directives.ntasks % rpn:
        raise SlurmError(
            f"--ntasks={directives.ntasks} not divisible by "
            f"--ntasks-per-node={rpn}"
        )
    per_socket = directives.ntasks_per_socket
    if per_socket is None:
        # Default: pack socket 0 first, overflow onto socket 1.
        s0 = min(rpn, machine.cores_per_socket)
        split = (s0, rpn - s0)
    else:
        if per_socket > machine.cores_per_socket:
            raise SlurmError(
                f"--ntasks-per-socket={per_socket} exceeds "
                f"{machine.cores_per_socket} cores/socket"
            )
        needed_sockets = -(-rpn // per_socket)  # ceil
        if needed_sockets > machine.sockets_per_node:
            raise SlurmError(
                f"{rpn} tasks/node at {per_socket}/socket need "
                f"{needed_sockets} sockets; node has "
                f"{machine.sockets_per_node}"
            )
        split = (min(per_socket, rpn), max(0, rpn - per_socket))
    shape = _shape_for(split, machine)
    return Layout(
        ranks=directives.ntasks,
        nodes=directives.ntasks // rpn,
        ranks_per_node=rpn,
        ranks_per_socket=split,
        shape=shape,
    )


def _shape_for(split: tuple[int, int], machine: MachineSpec) -> LoadShape:
    c = machine.cores_per_socket
    if split == (c, c):
        return LoadShape.FULL
    if split[1] == 0:
        return LoadShape.HALF_ONE_SOCKET
    return LoadShape.HALF_TWO_SOCKETS


class SlurmPlacement(Placement):
    """Placement with a configurable socket-binding fidelity.

    ``STRICT`` reproduces the intended Table 1 shapes.  ``LEAKY`` models
    §5.3's suspicion — the scheduler ignores the socket directive and
    round-robins each node's tasks over both sockets.
    """

    def __init__(self, layout: Layout, machine: MachineSpec,
                 binding: SocketBinding = SocketBinding.STRICT):
        if binding is SocketBinding.STRICT:
            super().__init__(layout, machine)
        else:
            super().__init__(layout, machine)
            # Rebuild the per-node assignment round-robin across sockets.
            self._assignments = []
            for node_id in range(layout.nodes):
                counters = [0] * machine.sockets_per_node
                for t in range(layout.ranks_per_node):
                    socket_id = t % machine.sockets_per_node
                    self._assignments.append(Core(
                        node_id=node_id,
                        socket_id=socket_id,
                        index=counters[socket_id],
                    ))
                    counters[socket_id] += 1
        self.binding = binding


def submit(script_or_directives, machine: MachineSpec,
           binding: SocketBinding = SocketBinding.STRICT) -> SlurmPlacement:
    """One-stop: batch script (or directives) → bound placement."""
    if isinstance(script_or_directives, str):
        directives = parse_batch_script(script_or_directives)
    else:
        directives = script_or_directives
    layout = layout_from_directives(directives, machine)
    return SlurmPlacement(layout, machine, binding=binding)
