"""Machine presets: hardware specifications of the simulated clusters.

The primary preset reproduces CINECA **Marconi A3** as described in §5 of the
paper: 3188 nodes, each with 2 × 24-core Intel Xeon 8160 (Skylake) at
2.10 GHz and 192 GB DDR4, on an Intel OmniPath (100 Gbit/s) interconnect,
batch-scheduled with Slurm so that "the collected energy values concern only
the processors directly involved in the computation".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.topology import Cluster
from repro.energy.power_model import PowerParams


@dataclass(frozen=True)
class NetworkParams:
    """Interconnect coefficients consumed by :class:`~repro.cluster.network.ClusterFabric`."""

    inter_latency: float = 1.5e-6       # OmniPath MPI latency
    inter_bandwidth: float = 12.5e9     # 100 Gbit/s per node link
    intra_latency: float = 4.0e-7       # shared-memory transport
    intra_bandwidth: float = 30.0e9
    cpu_overhead: float = 4.0e-7        # per-message CPU cost at each endpoint
    cpu_overhead_per_byte: float = 2.0e-11


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to instantiate a simulated cluster."""

    name: str
    sockets_per_node: int
    cores_per_socket: int
    core_freq_hz: float
    dram_gb_per_node: float
    power: PowerParams = field(default_factory=PowerParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    #: peak double-precision flop/s of one core (vector units at nominal freq)
    core_peak_flops: float = 67.2e9
    #: single-node peak as advertised (Marconi A3: 3.2 TFlop/s)
    node_peak_flops: float = 3.2e12

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    def build_cluster(self, n_nodes: int) -> Cluster:
        return Cluster(
            n_nodes=n_nodes,
            sockets_per_node=self.sockets_per_node,
            cores_per_socket=self.cores_per_socket,
        )

    def with_power(self, **overrides) -> "MachineSpec":
        return replace(self, power=self.power.with_overrides(**overrides))


def marconi_a3() -> MachineSpec:
    """CINECA Marconi A3 (SkyLake partition), per §5 and [20]."""
    return MachineSpec(
        name="marconi-a3",
        sockets_per_node=2,
        cores_per_socket=24,
        core_freq_hz=2.1e9,
        dram_gb_per_node=192.0,
        power=PowerParams(
            pkg_idle_w=45.0,
            core_base_w=1.05,
            core_flops_w=1.45,
            core_mem_w=0.55,
            dram_idle_w=8.0,
            dram_energy_per_byte=2.0e-10,
            nominal_freq_hz=2.1e9,
            pkg_tdp_w=150.0,
        ),
        network=NetworkParams(),
        core_peak_flops=67.2e9,   # 2.1 GHz × 32 DP flops/cycle (AVX-512)
        node_peak_flops=3.2e12,
    )


def small_test_machine(sockets_per_node: int = 2, cores_per_socket: int = 2,
                       **power_overrides) -> MachineSpec:
    """A tiny machine with Marconi-like coefficients for fast tests."""
    spec = marconi_a3()
    return replace(
        spec,
        name="test-machine",
        sockets_per_node=sockets_per_node,
        cores_per_socket=cores_per_socket,
        power=spec.power.with_overrides(**power_overrides),
    )
