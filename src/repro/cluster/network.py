"""Topology-aware interconnect model.

Implements the :class:`repro.simmpi.fabric.Fabric` protocol with two tiers:
shared-memory transfers between ranks on the same node, and OmniPath-class
transfers between nodes.  Optional multiplicative jitter (seeded,
deterministic per message) models fabric noise — one of the sources of
run-to-run variance the paper observes across repetitions.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.machine import NetworkParams


class ClusterFabric:
    """Two-tier latency/bandwidth fabric with deterministic seeded jitter.

    With ``serialize_injection`` each node's NIC becomes a serial resource
    for inter-node transfers: concurrent senders on one node queue for the
    injection link (their serialization times add), while senders on
    different nodes are independent — modelling the single 100 Gbit/s
    OmniPath port per Marconi node.
    """

    def __init__(self, params: NetworkParams, jitter_frac: float = 0.0,
                 seed: int = 0, serialize_injection: bool = False):
        if jitter_frac < 0 or jitter_frac >= 1:
            raise ValueError(f"jitter_frac must be in [0,1): {jitter_frac}")
        self.params = params
        self.jitter_frac = jitter_frac
        self.serialize_injection = serialize_injection
        self._nic_free: dict[int, float] = defaultdict(float)
        self._rng = np.random.default_rng(seed)

    def _jitter(self) -> float:
        if self.jitter_frac == 0.0:
            return 1.0
        # Uniform in [1-j, 1+j]; consumed in message order, so a fixed seed
        # yields a reproducible timing trace.
        return 1.0 + self.jitter_frac * (2.0 * self._rng.random() - 1.0)

    def cpu_overhead(self, nbytes: int) -> float:
        p = self.params
        return p.cpu_overhead + p.cpu_overhead_per_byte * nbytes

    def transfer_time(self, nbytes: int, src_node: int, dst_node: int) -> float:
        p = self.params
        if src_node == dst_node:
            base = p.intra_latency + nbytes / p.intra_bandwidth
        else:
            base = p.inter_latency + nbytes / p.inter_bandwidth
        return base * self._jitter()

    def transfer_schedule(self, nbytes: int, src_node: int, dst_node: int,
                          now: float) -> float:
        """Arrival time for a transfer initiated at ``now``.

        Under ``serialize_injection`` inter-node transfers queue for the
        source node's injection link; otherwise this reduces to
        ``now + transfer_time``.
        """
        if not self.serialize_injection or src_node == dst_node:
            return now + self.transfer_time(nbytes, src_node, dst_node)
        p = self.params
        start = max(now, self._nic_free[src_node])
        serialization = (nbytes / p.inter_bandwidth) * self._jitter()
        self._nic_free[src_node] = start + serialization
        return start + serialization + p.inter_latency
