"""Simulated HPC cluster substrate.

Models the hardware the paper ran on: nodes with two CPU packages (sockets)
of 24 cores each plus two DRAM domains, an OmniPath-class interconnect, and a
Slurm-like placement layer that maps MPI ranks onto nodes/sockets/cores
according to the deployment shapes of the paper's Table 1 (full load,
half load on one socket, half load across two sockets).
"""

from repro.cluster.topology import Core, Socket, Node, Cluster
from repro.cluster.machine import MachineSpec, marconi_a3, small_test_machine
from repro.cluster.placement import (
    LoadShape,
    Layout,
    Placement,
    place_ranks,
    table1_layouts,
)
from repro.cluster.network import ClusterFabric

__all__ = [
    "Core",
    "Socket",
    "Node",
    "Cluster",
    "MachineSpec",
    "marconi_a3",
    "small_test_machine",
    "LoadShape",
    "Layout",
    "Placement",
    "place_ranks",
    "table1_layouts",
    "ClusterFabric",
]
