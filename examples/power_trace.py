#!/usr/bin/env python
"""Time-resolved power traces of both solvers (ASCII).

Samples node power every few virtual milliseconds while IMe and ScaLAPACK
solve the same system on a simulated 2-node machine, then renders the two
traces as sparklines.  The solvers' different execution structures show up
directly in the power signal: IMe's long uniform level sweep versus
ScaLAPACK's shorter, denser run.

Run:  python examples/power_trace.py
"""

from dataclasses import replace

import numpy as np

from repro.cluster.machine import small_test_machine
from repro.cluster.placement import LoadShape, place_ranks
from repro.core.framework import _ime_solver, _scalapack_solver
from repro.energy.tracing import PowerTracer
from repro.perfmodel.calibration import profile_for
from repro.runtime.job import Job
from repro.workloads.generator import generate_system

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 72) -> str:
    if len(values) == 0:
        return ""
    # Downsample to the target width by averaging buckets.
    buckets = np.array_split(values, min(width, len(values)))
    means = np.array([b.mean() for b in buckets])
    lo, hi = means.min(), means.max()
    if hi == lo:
        return BARS[4] * len(means)
    scaled = ((means - lo) / (hi - lo) * (len(BARS) - 1)).round().astype(int)
    return "".join(BARS[i] for i in scaled)


def main() -> None:
    system = generate_system(96, seed=13)
    ref = np.linalg.solve(system.a, system.b)
    machine = small_test_machine(cores_per_socket=2)

    for name, solver in [("IMe", _ime_solver),
                         ("ScaLAPACK", _scalapack_solver)]:
        algorithm = "ime" if name == "IMe" else "scalapack"
        profile = replace(profile_for(algorithm), eff_flops_per_core=2.0e6)
        placement = place_ranks(8, LoadShape.FULL, machine)
        job = Job(machine, placement, profile=profile)
        tracer = PowerTracer(job, period=2.0e-3)
        result, trace = tracer.run(
            lambda ctx, comm: solver(ctx, comm, system=system)
        )
        x = result.rank_results[0]
        assert np.allclose(x, ref, atol=1e-8)
        t, watts = trace.node_power_series(0)
        print(f"\n{name}: {result.duration * 1e3:7.1f} ms, "
              f"{result.total_energy_j:6.2f} J, node-0 power "
              f"{watts.min():.0f}–{watts.max():.0f} W "
              f"({trace.n_samples} samples)")
        print(f"  node 0 power  |{sparkline(watts)}|")
        t1, w1 = trace.power_series(0, "dram-0")
        print(f"  dram-0 power  |{sparkline(w1)}|")


if __name__ == "__main__":
    main()
