#!/usr/bin/env python
"""From a Slurm batch script to a monitored energy measurement.

The paper's jobs were submitted through Slurm with per-node/per-socket
task directives (§5), and §5.3 doubts the socket directives were honoured.
This demo parses a Table 1-style ``#SBATCH`` script, places the job under
both binding hypotheses (STRICT = directives honoured; LEAKY = scheduler
spreads tasks over both sockets anyway), runs the monitored solver, and
prints the per-package energy signature that distinguishes them.

Run:  python examples/slurm_batch.py
"""

from dataclasses import replace

import numpy as np

from repro.cluster.machine import small_test_machine
from repro.cluster.slurm import SocketBinding, parse_batch_script, submit
from repro.core.framework import _ime_solver
from repro.core.monitoring import monitored_program
from repro.perfmodel.calibration import IME_PROFILE
from repro.runtime.job import Job
from repro.workloads.generator import generate_system

BATCH_SCRIPT = """\
#!/bin/bash
#SBATCH --job-name=ime_energy
#SBATCH --ntasks=8
#SBATCH --ntasks-per-node=4
#SBATCH --ntasks-per-socket=4
#SBATCH --distribution=block
srun ./ime_solver input.npz
"""


def main() -> None:
    machine = small_test_machine(cores_per_socket=4)
    directives = parse_batch_script(BATCH_SCRIPT)
    print(f"directives: ntasks={directives.ntasks}, "
          f"per-node={directives.ntasks_per_node}, "
          f"per-socket={directives.ntasks_per_socket}")

    system = generate_system(48, seed=5)
    ref = np.linalg.solve(system.a, system.b)
    profile = replace(IME_PROFILE, eff_flops_per_core=2.0e6)

    for binding in (SocketBinding.STRICT, SocketBinding.LEAKY):
        placement = submit(BATCH_SCRIPT, machine, binding=binding)
        per_socket = [len(placement.ranks_on_socket(0, s)) for s in (0, 1)]
        job = Job(machine, placement, profile=profile)
        result = job.run(monitored_program(_ime_solver, system=system))
        solution, measurement = result.rank_results[0]
        assert np.allclose(solution, ref, atol=1e-8)
        node = measurement.node(0)
        pkg0 = node.domain_j("package-0")
        pkg1 = node.domain_j("package-1")
        print(f"\n{binding.value:>7} binding: node 0 tasks per socket "
              f"{per_socket}")
        print(f"  package-0 {pkg0:8.4f} J   package-1 {pkg1:8.4f} J   "
              f"(pkg1 is {100 * (1 - pkg1 / pkg0):.1f}% below pkg0)")
    print("\nSTRICT shows the §5.3 signature (the 'idle' socket still burns "
          "its power floor);\nLEAKY — the paper's suspicion — would show "
          "near-equal packages instead.")


if __name__ == "__main__":
    main()
