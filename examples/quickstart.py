#!/usr/bin/env python
"""Quickstart: solve one system both ways, then measure a parallel run.

Walks through the library's three layers in ~40 lines of user code:

1. generate a (file-backed) diagonally dominant linear system;
2. solve it with the sequential Inhibition Method and with Gaussian
   Elimination, checking both against NumPy;
3. run the *parallel* versions (IMeP and block-cyclic LU) on a simulated
   2-node cluster under the paper's white-box energy monitor and print the
   per-node PAPI powercap readings.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cluster.machine import small_test_machine
from repro.cluster.placement import LoadShape, place_ranks
from repro.core.framework import ExperimentSpec, MonitoringFramework
from repro.perfmodel.calibration import profile_for
from repro.solvers.dense import gaussian_elimination, relative_residual
from repro.solvers.ime.sequential import ime_solve
from repro.workloads.generator import generate_system
from repro.workloads.matrixio import load_system, save_system


def main() -> None:
    # --- 1. a reproducible, file-backed input system (§5.1 of the paper)
    system = generate_system(n=64, seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_system(system, Path(tmp) / "system.npz")
        system = load_system(path)
    print(f"system: n={system.n}, diagonally dominant, seed={system.seed}")

    # --- 2. sequential solvers
    x_ime = ime_solve(system.a, system.b)
    x_ge = gaussian_elimination(system.a, system.b)
    x_ref = np.linalg.solve(system.a, system.b)
    print(f"IMe residual: {relative_residual(system.a, x_ime, system.b):.2e}")
    print(f"GE  residual: {relative_residual(system.a, x_ge, system.b):.2e}")
    assert np.allclose(x_ime, x_ref) and np.allclose(x_ge, x_ref)

    # --- 3. monitored parallel runs on a simulated 2-node machine
    machine = small_test_machine(cores_per_socket=2)  # 2×2 cores per node
    framework = MonitoringFramework()
    for algorithm in ("ime", "scalapack"):
        # A demo-sized system at real Skylake rates finishes inside one
        # RAPL counter tick (1 ms); slow the virtual cores so the measured
        # window spans many ticks, like the paper's second-scale runs.
        from dataclasses import replace
        demo_profile = replace(profile_for(algorithm),
                               eff_flops_per_core=2.0e6)
        spec = ExperimentSpec(
            algorithm=algorithm,
            system=system,
            ranks=8,                      # 2 nodes × 4 ranks
            shape=LoadShape.FULL,
            repetitions=3,
            machine=machine,
            profile=demo_profile,
        )
        result = framework.run_experiment(spec)
        run = result.runs[0]
        assert np.allclose(run.solution, x_ref, atol=1e-8)
        print(f"\n{algorithm}: mean duration {result.mean_duration * 1e3:.3f} ms"
              f" (virtual), mean energy {result.mean_total_j:.3f} J")
        for node in run.measured.nodes:
            print(f"  node {node.node_id} (monitor = world rank "
                  f"{node.monitor_world_rank}):")
            for event, uj in node.values_uj.items():
                print(f"    {event:<42} {uj:>12} uJ")


if __name__ == "__main__":
    main()
