#!/usr/bin/env python
"""The paper's headline experiment at full Marconi A3 scale.

Reproduces the §5 evaluation with the analytic execution mode: both
solvers over every matrix dimension {8640, 17280, 25920, 34560} and rank
count {144, 576, 1296} (48 ranks/node FULL deployments), ten repetitions
each, printing the duration/energy/power comparison of §5.2–§5.4:

* ScaLAPACK is faster in dense computations; IMe overtakes it in the most
  distributed small-matrix deployments;
* ScaLAPACK's total energy sits 50–60 % below IMe's when dense, the gap
  narrowing with more ranks and smaller matrices;
* IMe draws 12–18 % more power, with a much larger DRAM-power gap.

Run:  python examples/marconi_comparison.py
"""

from repro.cluster.machine import marconi_a3
from repro.cluster.placement import LoadShape
from repro.experiments.runner import run_analytic
from repro.experiments.summary import gap
from repro.workloads.generator import PAPER_MATRIX_SIZES


def main() -> None:
    machine = marconi_a3()
    header = (f"{'n':>6} {'ranks':>5} | {'T_IMe':>8} {'T_ScaL':>8} "
              f"{'faster':>9} | {'E_IMe kJ':>9} {'E_ScaL kJ':>9} "
              f"{'E gap':>6} | {'P gap':>6} {'DRAM P gap':>10}")
    print(f"machine: {machine.name} "
          f"({machine.sockets_per_node}x{machine.cores_per_socket} cores, "
          f"{machine.core_freq_hz / 1e9:.1f} GHz)\n")
    print(header)
    print("-" * len(header))
    for n in PAPER_MATRIX_SIZES:
        for ranks in (144, 576, 1296):
            i = run_analytic("ime", n, ranks, LoadShape.FULL, machine)
            s = run_analytic("scalapack", n, ranks, LoadShape.FULL, machine)
            faster = "IMe" if i.mean_duration < s.mean_duration else "ScaLAPACK"
            print(
                f"{n:>6} {ranks:>5} | {i.mean_duration:8.2f} "
                f"{s.mean_duration:8.2f} {faster:>9} | "
                f"{i.mean_total_j / 1e3:9.1f} {s.mean_total_j / 1e3:9.1f} "
                f"{gap(i.mean_total_j, s.mean_total_j) * 100:5.1f}% | "
                f"{gap(i.mean_power_w, s.mean_power_w) * 100:5.1f}% "
                f"{gap(i.dram_power_w, s.dram_power_w) * 100:9.1f}%"
            )
    print("\n(gaps are (IMe − ScaLAPACK)/IMe over ten seeded repetitions;")
    print(" durations in seconds of simulated Marconi time)")


if __name__ == "__main__":
    main()
