#!/usr/bin/env python
"""IMe's integrated fault tolerance — the paper's §2 motivation.

"Recently it was proved that IMe has a good integrated low-cost multiple
fault tolerance, which is more efficient than the checkpoint/restart
technique usually applied in Gaussian Elimination linear systems
resolution."

This demo

1. augments the inhibition table with weighted checksum columns,
2. destroys two columns (a failed rank's shard) in the middle of the
   reduction,
3. rebuilds them — and the matching auxiliary quantities h — from the
   checksums alone, and finishes to the exact solution,
4. compares the protection/recovery cost against a classical
   checkpoint/restart scheme at the paper's matrix sizes.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.solvers.ime.fault import FaultTolerantTable, FtOverheadModel
from repro.workloads.generator import generate_system


def main() -> None:
    n = 64
    system = generate_system(n, seed=11)
    table = FaultTolerantTable(system.a, system.b, n_checksums=2, seed=11)

    half = n // 2
    for _ in range(half):
        table.reduce_level()
    print(f"reduced {half}/{n} levels; checksum residual "
          f"{table.checksum_residual():.2e}")

    lost = [5, 40]
    table.corrupt(lost)
    print(f"rank failure simulated: columns {lost} and their h entries "
          f"destroyed (now NaN)")

    recovered = table.recover()
    print(f"recovered columns {recovered} from the checksums; residual "
          f"{table.checksum_residual():.2e}")

    x = table.solve()
    err = np.max(np.abs(x - np.linalg.solve(system.a, system.b)))
    print(f"finished the reduction: max error vs LAPACK = {err:.2e}\n")

    print("protection/recovery cost vs checkpoint/restart "
          "(per factorization, modelled):")
    print(f"{'n':>7} | {'IMe checksums':>14} {'checkpointing':>14} | "
          f"{'IMe recovery':>13} {'ckpt recovery':>14}")
    for size in (8640, 17280, 34560):
        m = FtOverheadModel(n=size)
        print(f"{size:>7} | {m.ime_checksum_overhead_seconds():13.3f}s "
              f"{m.checkpoint_overhead_seconds():13.3f}s | "
              f"{m.ime_recovery_seconds(2):12.4f}s "
              f"{m.checkpoint_recovery_seconds():13.3f}s")

    distributed_demo()


def distributed_demo() -> None:
    """Kill an MPI rank mid-solve and watch the survivors recover."""
    from repro.cluster.machine import small_test_machine
    from repro.cluster.placement import LoadShape, place_ranks
    from repro.runtime.job import Job
    from repro.solvers.ime.ft_parallel import FtOptions, ime_ft_parallel_program

    n, ranks = 30, 5  # 4 data ranks + 1 checksum rank
    system = generate_system(n, seed=21)
    machine = small_test_machine(cores_per_socket=5)
    placement = place_ranks(ranks, LoadShape.HALF_ONE_SOCKET, machine)
    job = Job(machine, placement)
    opts = FtOptions(n_checksums=8, fail_rank=2, fail_level=n // 2)

    def program(ctx, comm):
        sys_arg = system if comm.rank == 0 else None
        out = yield from ime_ft_parallel_program(ctx, comm, system=sys_arg,
                                                 options=opts)
        return out

    result = job.run(program)
    x, report = result.rank_results[0]
    err = np.max(np.abs(x - np.linalg.solve(system.a, system.b)))
    print(f"\ndistributed run: rank {opts.fail_rank} killed at level "
          f"{opts.fail_level} of {n}")
    print(f"  victim's return value : {result.rank_results[opts.fail_rank]!r}")
    print(f"  recovery report       : {report}")
    print(f"  final solution error  : {err:.2e} "
          f"(survivors finished on the shrunk communicator)")


if __name__ == "__main__":
    main()
