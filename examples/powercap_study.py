#!/usr/bin/env python
"""Power-capping study — the paper's stated next phase (§6).

Applies RAPL package power caps to both solvers and sweeps the cap from
TDP down to near the idle floor, reporting the runtime/energy trade-off.
With cubic dynamic-power scaling, moderate caps *save* energy (power falls
faster than runtime grows) until the per-node idle/spin floor starts to
dominate the stretched runtime — the sweep locates the energy-optimal cap
for each algorithm.

Run:  python examples/powercap_study.py
"""

import numpy as np

from repro.cluster.machine import marconi_a3
from repro.cluster.placement import LoadShape
from repro.experiments.runner import run_analytic

N = 25920
RANKS = 144


def main() -> None:
    machine = marconi_a3()
    caps = [None] + list(np.arange(140.0, 55.0, -10.0))
    print(f"n={N}, ranks={RANKS} (Table 1 FULL row: 3 nodes x 48 ranks), "
          f"package TDP = {machine.power.pkg_tdp_w:.0f} W\n")
    print(f"{'cap W':>7} | {'T_IMe s':>8} {'E_IMe kJ':>9} | "
          f"{'T_ScaL s':>8} {'E_ScaL kJ':>9}")
    best = {}
    for cap in caps:
        row = []
        for alg in ("ime", "scalapack"):
            r = run_analytic(alg, N, RANKS, LoadShape.FULL, machine,
                             power_cap_w=cap)
            row.append(r)
            key = (alg,)
            if key not in best or r.mean_total_j < best[key][1]:
                best[key] = (cap, r.mean_total_j)
        cap_str = "none" if cap is None else f"{cap:.0f}"
        print(f"{cap_str:>7} | {row[0].mean_duration:8.2f} "
              f"{row[0].mean_total_j / 1e3:9.2f} | "
              f"{row[1].mean_duration:8.2f} {row[1].mean_total_j / 1e3:9.2f}")
    print()
    for alg in ("ime", "scalapack"):
        cap, energy = best[(alg,)]
        cap_str = "uncapped" if cap is None else f"{cap:.0f} W"
        print(f"energy-optimal cap for {alg:>9}: {cap_str} "
              f"({energy / 1e3:.2f} kJ)")


if __name__ == "__main__":
    main()
