#!/usr/bin/env python
"""Anatomy of the white-box monitor (the paper's Figure 2 flow).

Builds the monitoring protocol *by hand* — without the framework wrapper —
to show exactly what the paper's §4 design does inside each rank:

* ``MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`` groups ranks per node;
* the highest rank of each node communicator becomes the monitoring rank;
* the monitoring ranks initialize PAPI, open the powercap event set, and
  bracket the solver region between barrier-synchronized start/stop reads;
* ``file_management`` writes one human-readable result file per node.

Run:  python examples/whitebox_monitoring.py
"""

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.cluster.machine import small_test_machine
from repro.cluster.placement import LoadShape, place_ranks
from repro.core.monitoring import WhiteBoxMonitor
from repro.core.records import RunMeasurement, file_management
from repro.perfmodel.calibration import IME_PROFILE
from repro.runtime.job import Job
from repro.solvers.ime.parallel import ime_parallel_program
from repro.workloads.generator import generate_system

RANKS = 8            # 2 simulated nodes × 4 ranks
SYSTEM = generate_system(48, seed=3)


def rank_program(ctx, comm):
    """What every MPI rank executes (the paper's Fig. 2, top to bottom)."""
    monitor = WhiteBoxMonitor(ctx)

    node_comm = yield from monitor.attach(comm)       # split_type(SHARED)
    role = "monitoring" if monitor.is_monitor else "processing"
    print(f"  world rank {ctx.rank} -> node {ctx.node_id}, "
          f"node-rank {node_comm.rank}/{node_comm.size} ({role})")

    yield from monitor.start_monitoring()             # barriers + PAPI start

    system = SYSTEM if comm.rank == 0 else None       # the solver region
    x = yield from ime_parallel_program(ctx, comm, system=system)

    measurement = yield from monitor.stop_monitoring()  # barriers + PAPI stop
    gathered = yield from comm.gather(measurement, root=0)
    if comm.rank == 0:
        return x, tuple(m for m in gathered if m is not None)
    return None


def main() -> None:
    machine = small_test_machine(cores_per_socket=2)
    placement = place_ranks(RANKS, LoadShape.FULL, machine)
    # Slowed cores so the tiny demo system spans many 1 ms counter ticks.
    job = Job(machine, placement,
              profile=replace(IME_PROFILE, eff_flops_per_core=1.0e6))

    print("rank layout and monitoring roles:")
    result = job.run(rank_program)
    x, node_measurements = result.rank_results[0]
    run = RunMeasurement(nodes=node_measurements)

    print(f"\nmonitored window: {run.duration * 1e3:.2f} ms (virtual); "
          f"{run.total_j:.3f} J across {run.n_nodes} nodes")
    with tempfile.TemporaryDirectory() as tmp:
        paths = file_management(run, tmp, label="demo")
        for path in paths:
            print(f"\n--- {Path(path).name} ---")
            print(path.read_text().rstrip())


if __name__ == "__main__":
    main()
