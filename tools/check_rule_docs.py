#!/usr/bin/env python
"""Keep the rule table in docs/static-analysis.md in sync with the
rule registry (``repro.lint.registry.RULES``).

The table lives between the ``<!-- rule-table:begin -->`` and
``<!-- rule-table:end -->`` markers and is generated, never hand-edited.
``--check`` (the default, run by ``make docs-check``) fails when the
committed table differs from the registry; ``--write`` regenerates it
in place:

    python tools/check_rule_docs.py --write
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.lint.registry import RULES  # noqa: E402

DOC = REPO / "docs" / "static-analysis.md"
BEGIN = "<!-- rule-table:begin -->"
END = "<!-- rule-table:end -->"


def render_table() -> str:
    lines = [
        "| Rule | Family | Checks |",
        "| --- | --- | --- |",
    ]
    for spec in RULES:
        summary = spec.summary.replace("|", "\\|")
        lines.append(f"| `{spec.id}` | {spec.family} | {summary} |")
    return "\n".join(lines)


def splice(text: str) -> str:
    try:
        head, rest = text.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"{DOC.relative_to(REPO)}: rule-table markers missing or "
            f"malformed (need one {BEGIN} … {END} pair)"
        )
    return f"{head}{BEGIN}\n{render_table()}\n{END}{tail}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="regenerate the table in place")
    args = parser.parse_args()

    current = DOC.read_text(encoding="utf-8")
    desired = splice(current)
    if args.write:
        if desired != current:
            DOC.write_text(desired, encoding="utf-8")
            print(f"rewrote rule table in {DOC.relative_to(REPO)}")
        else:
            print("rule table already up to date")
        return 0
    if desired != current:
        print(
            f"{DOC.relative_to(REPO)}: rule table is out of date with "
            "repro.lint.registry.RULES — regenerate with\n"
            "    python tools/check_rule_docs.py --write",
            file=sys.stderr,
        )
        return 1
    print(f"rule table in sync ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
