#!/usr/bin/env python
"""Verify that intra-repo Markdown links resolve to real files.

Scans README.md and docs/*.md for inline links ``[text](target)`` —
including links wrapped across a line break between ``]`` and ``(`` —
and fails if any relative target does not exist on disk.  External
links (http/https/mailto) and pure in-page anchors are skipped;
fragments are stripped before the existence check.

Run directly or via ``make docs-check``:

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline Markdown link; ``\s*`` tolerates a newline between ] and (
LINK = re.compile(r"\[([^\]]*)\]\s*\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(2)
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            try:
                shown = path.relative_to(REPO)
            except ValueError:
                shown = path
            problems.append(
                f"{shown}:{line}: broken link "
                f"[{match.group(1)}]({target})"
            )
    return problems


def main() -> int:
    files = iter_doc_files()
    problems = [p for f in files for p in check_file(f)]
    for p in problems:
        print(p, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'OK' if not problems else f'{len(problems)} broken links'}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
