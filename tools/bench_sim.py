#!/usr/bin/env python
"""Wall-clock benchmark of the simulator (thin wrapper over repro.bench).

Times end-to-end IMe and ScaLAPACK jobs at several (n, ranks) points in
both collective modes and maintains BENCH_simperf.json at the repo root:

    PYTHONPATH=src python tools/bench_sim.py --write          # full suite
    PYTHONPATH=src python tools/bench_sim.py --quick --check  # CI guard

Also exposed as ``repro bench`` and ``make bench`` / ``make bench-quick``.
See docs/performance.md for the file format.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(prog="bench_sim"))
