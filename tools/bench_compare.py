#!/usr/bin/env python
"""Diff two BENCH_simperf.json reports point by point.

Usage::

    python tools/bench_compare.py OLD.json NEW.json

Prints one row per benchmark point: fast-path wall-clock on both sides,
the fast-vs-message speedup on both sides, and the speedup delta — the
number a performance PR is trying to move.  Points present on only one
side are listed but not compared.

The modeled quantities (virtual_s, messages, bytes, total_energy_j) are
*checked*, not diffed: they are supposed to be bit-identical between any
two runs of the same simulator version, so any difference is flagged
loudly — it means the change altered simulation semantics, not just
wall-clock speed.

Peak RSS (``maxrss_kb``, recorded per point since the skeleton-mode
benchmarks) is diffed alongside the speedups: a wall-clock win that
costs a multiple of the memory is usually a caching bug, so any point
whose fast-path peak RSS grows beyond ``--rss-tolerance`` (default
1.5x) raises a memory-regression warning.

``make bench-diff`` wires this against ``git show HEAD:BENCH_simperf.json``
so a working tree can be compared to the committed baseline in one step.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: quantities that must match between runs of the same simulator semantics
MODELED = ("virtual_s", "messages", "bytes", "total_energy_j")


def load_points(path: str) -> dict[str, dict]:
    report = json.loads(Path(path).read_text())
    return {e["label"]: e for e in report.get("points", [])}


def modeled_diffs(old: dict, new: dict) -> list[str]:
    """Names of modeled quantities that differ in any shared mode."""
    diffs = []
    for mode in ("fast", "message"):
        o = old.get("results", {}).get(mode)
        n = new.get("results", {}).get(mode)
        if o is None or n is None:
            continue
        for q in MODELED:
            if o.get(q) != n.get(q):
                diffs.append(f"{mode}.{q}")
    return diffs


def rss_mb(point: dict | None) -> float | None:
    """Fast-path peak RSS of a point in MB, if recorded (ru_maxrss is KB
    on Linux)."""
    if point is None:
        return None
    rss = point.get("results", {}).get("fast", {}).get("maxrss_kb")
    return rss / 1024.0 if rss is not None else None


def compare(old_path: str, new_path: str,
            rss_tolerance: float = 1.5) -> tuple[str, list[str]]:
    """Render the comparison table; returns ``(table, warnings)``."""
    old_pts = load_points(old_path)
    new_pts = load_points(new_path)
    header = (f"{'point':<26} {'old fast':>9} {'new fast':>9} "
              f"{'old spdup':>9} {'new spdup':>9} {'Δ spdup':>8} "
              f"{'old MB':>7} {'new MB':>7}")
    lines = [header, "-" * len(header)]
    warnings: list[str] = []
    for label in list(old_pts) + [l for l in new_pts if l not in old_pts]:
        old = old_pts.get(label)
        new = new_pts.get(label)
        if old is None or new is None:
            side = "new" if old is None else "old"
            lines.append(f"{label:<26} (only in {side} report)")
            continue
        of = old.get("results", {}).get("fast", {}).get("wall_s")
        nf = new.get("results", {}).get("fast", {}).get("wall_s")
        os_ = old.get("speedup")
        ns = new.get("speedup")
        orss = rss_mb(old)
        nrss = rss_mb(new)
        row = f"{label:<26} "
        row += f"{of:>9.3f}" if of is not None else f"{'-':>9}"
        row += f" {nf:>9.3f}" if nf is not None else f" {'-':>9}"
        row += f" {os_:>9.2f}" if os_ is not None else f" {'-':>9}"
        row += f" {ns:>9.2f}" if ns is not None else f" {'-':>9}"
        if os_ is not None and ns is not None:
            row += f" {ns - os_:>+8.2f}"
        else:
            row += f" {'-':>8}"
        row += f" {orss:>7.0f}" if orss is not None else f" {'-':>7}"
        row += f" {nrss:>7.0f}" if nrss is not None else f" {'-':>7}"
        lines.append(row)
        for q in modeled_diffs(old, new):
            warnings.append(
                f"{label}: modeled quantity {q} differs between reports "
                "— the change altered simulation semantics, not just speed"
            )
        if orss and nrss and nrss > orss * rss_tolerance:
            warnings.append(
                f"{label}: memory regression — fast-path peak RSS grew "
                f"{nrss / orss:.2f}x ({orss:.0f} MB -> {nrss:.0f} MB, "
                f"tolerance {rss_tolerance:.2f}x)"
            )
    return "\n".join(lines), warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_simperf.json reports "
                    "(see docs/performance.md).",
    )
    parser.add_argument("old", help="baseline report (e.g. the committed one)")
    parser.add_argument("new", help="candidate report")
    parser.add_argument("--rss-tolerance", type=float, default=1.5,
                        help="warn when fast-path peak RSS grows beyond "
                             "this factor (default 1.5)")
    args = parser.parse_args(argv)
    table, warnings = compare(args.old, args.new, args.rss_tolerance)
    print(table)
    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
