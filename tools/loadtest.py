#!/usr/bin/env python
"""Load-test the campaign daemon (thin wrapper over repro.serve.loadtest).

Spawns `repro serve` on an ephemeral port with a fresh cache root and
drives it with synthetic clients: cold §5-grid fill, warm hit-path
latency percentiles, single-flight dedup under concurrent identical
requests, and /batch vs per-request speedup.  Maintains BENCH_serve.json
at the repo root:

    PYTHONPATH=src python tools/loadtest.py --write           # full suite
    PYTHONPATH=src python tools/loadtest.py --quick --check   # CI guard

Also exposed as ``repro loadtest`` and ``make bench-serve``.
See docs/serving.md for the file format and the serving contracts.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.loadtest import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(prog="loadtest"))
